//! The execution front-end shared by the CLI and the server: one typed
//! entry point for every language the system evaluates.
//!
//! An [`ExecRequest`] names *what* to run ([`ExecKind`]: an FO/FP/PFP
//! query, an ESO sentence/query, or a Datalog program), *how* to run it
//! ([`EvalOptions`]), and whether to record a trace. [`prepare_request`]
//! parses and classifies it into a [`Prepared`] plan — the unit the
//! server's plan cache stores — and [`execute_prepared`] is the **single
//! dispatcher** that picks an evaluator and produces an [`ExecOutcome`]
//! (answer + stats + optional span tree). [`execute`] composes the two.
//!
//! The CLI re-exports [`run_eval`]/[`run_eso`]/[`EvalOptions`] (thin
//! rendering wrappers over the same path, byte-compatible with their
//! historical output), and [`run_explain`] renders [`explain`]'s static
//! or measured plan tree. [`RunError::code`] maps error kinds to
//! protocol error codes so front-ends never match strings.

use std::sync::{Arc, Mutex};
use std::time::Instant;

use bvq_core::{
    feedback_from, plan_query, BoundedEvaluator, CertifiedChecker, CompileFeedback, EsoEvaluator,
    EvalError, Evaluated, FpEvaluator, NaiveEvaluator, PfpEvaluator, PlanChoice,
};
use bvq_datalog::{eval_naive_with, eval_seminaive_with, DatalogError, Program};
use bvq_logic::parser::{parse_eso, parse_query};
use bvq_logic::{Eso, FixKind, Formula, Query, Var};
use bvq_relation::trace::truncate_detail;
use bvq_relation::{
    choose, BackendMode, ChoiceHints, CylCtx, Database, EvalConfig, EvalStats, Relation, Span,
    Tracer,
};

use crate::json::Json;
use crate::stats::Language;

/// Errors from running a query, by kind — so front-ends (the protocol
/// layer, the CLI) can branch on *what* failed instead of matching
/// strings.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RunError {
    /// The query text failed to parse.
    Parse(String),
    /// An option was used with a query it does not apply to (e.g.
    /// `--naive` on a fixpoint query).
    InvalidOption(String),
    /// A Datalog request named an output predicate the program never
    /// derives.
    UnknownOutput(String),
    /// The evaluator rejected or aborted the query.
    Eval(EvalError),
    /// A Datalog program failed to parse, validate, or evaluate.
    Datalog(DatalogError),
    /// A certificate was requested but the request is outside the
    /// certifiable fragment (or production hit its work caps). The
    /// *answer* is still computable — callers fall back to plain
    /// uncertified evaluation.
    NotCertifiable(String),
    /// The query references a relation that does not match the
    /// database's schema (unknown name or wrong arity) — caught at
    /// dispatch, before any evaluation starts.
    Schema {
        /// The offending relation name.
        name: String,
        /// The schema's arity, or `None` when the relation is unknown.
        expected: Option<usize>,
        /// The arity the query used.
        found: usize,
    },
}

impl RunError {
    /// The protocol error code for this error kind.
    pub fn code(&self) -> &'static str {
        match self {
            RunError::Parse(_) => "parse_error",
            RunError::InvalidOption(_) => "invalid_option",
            RunError::UnknownOutput(_) => "eval_error",
            RunError::Eval(EvalError::DeadlineExceeded) => "deadline_exceeded",
            RunError::Eval(_) => "eval_error",
            RunError::Datalog(DatalogError::Parse { .. }) => "parse_error",
            RunError::Datalog(DatalogError::DeadlineExceeded) => "deadline_exceeded",
            RunError::Datalog(_) => "eval_error",
            RunError::NotCertifiable(_) => "not_certifiable",
            RunError::Schema { .. } => "schema_error",
        }
    }
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Parse(m) | RunError::InvalidOption(m) => write!(f, "{m}"),
            RunError::UnknownOutput(p) => {
                write!(f, "program derives no predicate named `{p}`")
            }
            RunError::NotCertifiable(m) => write!(f, "not certifiable: {m}"),
            RunError::Eval(e) => write!(f, "{e}"),
            RunError::Datalog(e) => write!(f, "{e}"),
            RunError::Schema {
                name,
                expected: Some(expected),
                found,
            } => write!(
                f,
                "relation `{name}` has arity {expected} in the database but the query uses {found} argument(s)"
            ),
            RunError::Schema { name, .. } => {
                write!(f, "unknown relation `{name}`: the database does not define it")
            }
        }
    }
}

impl std::error::Error for RunError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RunError::Eval(e) => Some(e),
            RunError::Datalog(e) => Some(e),
            _ => None,
        }
    }
}

impl From<EvalError> for RunError {
    fn from(e: EvalError) -> Self {
        RunError::Eval(e)
    }
}

impl From<DatalogError> for RunError {
    fn from(e: DatalogError) -> Self {
        RunError::Datalog(e)
    }
}

impl From<RunError> for String {
    fn from(e: RunError) -> String {
        e.to_string()
    }
}

/// Whether to run queries through the bytecode compiler
/// (see [`bvq_core::plan_query`]) or the AST-walking interpreters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CompileMode {
    /// Let the cost model decide per plan (the default).
    #[default]
    Auto,
    /// Always run the compiled plan; planning errors are reported.
    On,
    /// Always interpret.
    Off,
}

impl CompileMode {
    /// Parses the `--compile` flag values.
    pub fn parse(s: &str) -> Option<CompileMode> {
        match s {
            "auto" => Some(CompileMode::Auto),
            "on" => Some(CompileMode::On),
            "off" => Some(CompileMode::Off),
            _ => None,
        }
    }
}

/// Options for `bvq eval` / the server's `eval` command.
#[derive(Clone, Debug, Default)]
pub struct EvalOptions {
    /// Variable bound; default = the query's width.
    pub k: Option<usize>,
    /// Use the naive (unbounded, named-column) evaluator.
    pub naive: bool,
    /// Rewrite the formula to fewer variables first (FO only).
    pub minimize: bool,
    /// Tuples to certify via Theorem 3.5 (FP queries only).
    pub certify: Vec<Vec<u32>>,
    /// Worker threads (`--threads N`); default = `BVQ_THREADS` else the
    /// machine's available parallelism. Results are identical either way.
    pub threads: Option<usize>,
    /// Absolute wall-clock deadline; fixpoint engines abort between
    /// rounds once it passes.
    pub deadline: Option<Instant>,
    /// Bytecode compilation: cost-based (`Auto`), forced, or disabled.
    pub compile: CompileMode,
    /// Cylinder backend: cost-based (`Auto`) or forced to one of
    /// `dense`/`sparse`/`bdd` (see [`bvq_relation::backend`]). Forced
    /// backends always interpret — the bytecode engine picks its own
    /// representation.
    pub backend: BackendMode,
    /// Emit a portable [`bvq_cert`] certificate alongside the answer
    /// ([`ExecOutcome::certificate`]). Requests outside the certifiable
    /// fragment fail with [`RunError::NotCertifiable`] — the answer is
    /// unchanged either way, so this flag is deliberately **excluded**
    /// from [`ExecRequest::cache_key`].
    pub certificate: bool,
}

impl EvalOptions {
    /// The parallel-evaluation configuration these options select.
    pub fn config(&self) -> EvalConfig {
        let cfg = match self.threads {
            Some(t) => EvalConfig::with_threads(t),
            None => EvalConfig::from_env(),
        };
        match self.deadline {
            Some(d) => cfg.with_deadline(d),
            None => cfg,
        }
    }
}

/// What to execute: the request body shared by the CLI subcommands, the
/// server's compute ops, and `explain`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExecKind {
    /// An FO / FP / PFP / IFP query in the surface syntax.
    Query {
        /// The query text.
        text: String,
    },
    /// An ESO sentence or query (Corollary 3.7 grounding).
    Eso {
        /// The sentence/query text.
        text: String,
    },
    /// A Datalog program with a designated output predicate.
    Datalog {
        /// The program text.
        program: String,
        /// The IDB predicate whose relation is the answer.
        output: String,
    },
}

/// One execution request: what to run plus how to run it. The single
/// argument of [`execute`]; constructed by the CLI's argument parser and
/// by the server's protocol layer alike, so trace/explain flags ride in
/// one place instead of per-op plumbing.
#[derive(Clone, Debug)]
pub struct ExecRequest {
    /// What to run.
    pub kind: ExecKind,
    /// How to run it.
    pub opts: EvalOptions,
    /// Record a span tree ([`ExecOutcome::trace`]). Excluded from
    /// [`cache_key`](ExecRequest::cache_key): tracing never changes the
    /// answer, but traced requests bypass the server's result cache so
    /// the spans are actually measured.
    pub trace: bool,
}

impl ExecRequest {
    /// A request for an FO/FP/PFP query with default options.
    pub fn query(text: impl Into<String>) -> ExecRequest {
        ExecRequest {
            kind: ExecKind::Query { text: text.into() },
            opts: EvalOptions::default(),
            trace: false,
        }
    }

    /// A request for an ESO sentence/query with default options.
    pub fn eso(text: impl Into<String>) -> ExecRequest {
        ExecRequest {
            kind: ExecKind::Eso { text: text.into() },
            opts: EvalOptions::default(),
            trace: false,
        }
    }

    /// A request for a Datalog program with default options.
    pub fn datalog(program: impl Into<String>, output: impl Into<String>) -> ExecRequest {
        ExecRequest {
            kind: ExecKind::Datalog {
                program: program.into(),
                output: output.into(),
            },
            opts: EvalOptions::default(),
            trace: false,
        }
    }

    /// Replaces the evaluation options (builder style).
    pub fn with_opts(mut self, opts: EvalOptions) -> ExecRequest {
        self.opts = opts;
        self
    }

    /// Enables or disables span tracing (builder style).
    pub fn with_trace(mut self, trace: bool) -> ExecRequest {
        self.trace = trace;
        self
    }

    /// The plan/result cache key: every semantic input (query text and
    /// the options that change the answer or the plan), nothing else —
    /// `threads`, `deadline` and `trace` affect only *how fast* and what
    /// gets measured, so they are deliberately excluded. Matches the
    /// keys the wire protocol has always produced.
    pub fn cache_key(&self) -> String {
        // `compile` only appears when it deviates from `Auto`, so keys
        // produced before the compiler existed stay byte-identical.
        let compile = match self.opts.compile {
            CompileMode::Auto => "",
            CompileMode::On => "compile=on|",
            CompileMode::Off => "compile=off|",
        };
        // Like `compile`, the backend only appears when forced, so
        // `auto` keys stay byte-identical to the pre-backend era.
        let backend = match self.opts.backend.forced() {
            Some(kind) => format!("backend={kind}|"),
            None => String::new(),
        };
        match &self.kind {
            ExecKind::Query { text } => format!(
                "eval|k={:?}|naive={}|min={}|{compile}{backend}{}",
                self.opts.k, self.opts.naive, self.opts.minimize, text
            ),
            ExecKind::Eso { text } => format!("eso|k={:?}|{}", self.opts.k, text),
            ExecKind::Datalog { program, output } => {
                format!(
                    "datalog|out={output}|naive={}|{compile}{backend}{program}",
                    self.opts.naive
                )
            }
        }
    }
}

/// Observed execution statistics shared across runs of one cached plan
/// — the cost model's calibration input. Interior-mutable so the plan
/// LRU's shared [`Prepared`] values accumulate feedback without
/// reinsertion; clones share the same cell.
#[derive(Clone, Debug, Default)]
pub struct FeedbackCell(Arc<Mutex<Option<CompileFeedback>>>);

impl FeedbackCell {
    /// The last recorded observation, if any run has completed.
    pub fn get(&self) -> Option<CompileFeedback> {
        *self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Records an observation (newest wins).
    pub fn set(&self, fb: CompileFeedback) {
        *self.0.lock().unwrap_or_else(|e| e.into_inner()) = Some(fb);
    }
}

/// A prepared (parsed, classified, possibly width-minimized) FO/FP/PFP
/// query — one arm of [`Prepared`], the unit the server's plan cache
/// stores.
#[derive(Clone, Debug)]
pub struct Plan {
    /// The parsed query (after optional minimization).
    pub query: Query,
    /// The query's language, as used for dispatch and stats.
    pub language: Language,
    /// The formula width (after minimization), including output vars.
    pub width: usize,
    /// The effective variable bound `k`.
    pub k: usize,
    /// A note when minimization reduced the width.
    pub minimized: Option<String>,
    /// Round counts observed by earlier executions of this plan, used
    /// to re-optimize the interpreted/compiled choice on later runs.
    pub feedback: FeedbackCell,
}

impl Plan {
    /// The display label for the plan's language row (`FO`, `FP`, …).
    pub fn language_label(&self) -> &'static str {
        match self.language {
            Language::Fo => "FO",
            Language::Fp => "FP",
            _ => "PFP/IFP",
        }
    }
}

/// A parsed ESO sentence/query plus its resolved bound and free
/// variables.
#[derive(Clone, Debug)]
pub struct EsoPlan {
    /// The parsed sentence/query.
    pub eso: Eso,
    /// The effective first-order variable bound `k`.
    pub k: usize,
    /// The body's first-order width.
    pub width: usize,
    /// Free individual variables (empty for a sentence).
    pub free: Vec<Var>,
}

/// A parsed Datalog program.
#[derive(Clone, Debug)]
pub struct DatalogPlan {
    /// The parsed program.
    pub program: Program,
}

/// A prepared request of any kind: what the server's plan cache stores
/// and [`execute_prepared`] dispatches on. Pure function of the
/// request's semantic fields — which is exactly why it can be cached
/// keyed by [`ExecRequest::cache_key`].
#[derive(Clone, Debug)]
pub enum Prepared {
    /// An FO/FP/PFP query plan.
    Query(Plan),
    /// An ESO plan.
    Eso(EsoPlan),
    /// A Datalog plan.
    Datalog(DatalogPlan),
}

impl Prepared {
    /// The language this plan will be dispatched to.
    pub fn language(&self) -> Language {
        match self {
            Prepared::Query(p) => p.language,
            Prepared::Eso(_) => Language::Eso,
            Prepared::Datalog(_) => Language::Datalog,
        }
    }

    /// The database relations this plan reads, sorted and deduplicated —
    /// the dependency set for delta-keyed result caching: a cached answer
    /// stays valid across mutations of every relation *not* in this list.
    /// Quantified ESO relations and Datalog IDB predicates are excluded
    /// (they are derived, not stored).
    pub fn referenced_relations(&self) -> Vec<String> {
        let mut names: Vec<String> = match self {
            Prepared::Query(p) => p
                .query
                .formula
                .db_relations()
                .into_iter()
                .map(|(n, _)| n)
                .collect(),
            Prepared::Eso(p) => p
                .eso
                .body
                .db_relations()
                .into_iter()
                .map(|(n, _)| n)
                .collect(),
            Prepared::Datalog(p) => p
                .program
                .edb_predicates()
                .into_iter()
                .map(|(n, _)| n)
                .collect(),
        };
        names.sort();
        names.dedup();
        names
    }

    /// How a standing query over this plan would be maintained under
    /// mutations ([`bvq_core::incr`]'s fallback matrix): counting or DRed
    /// for Datalog, re-evaluate-and-diff for everything else, with the
    /// deciding construct as the reason.
    pub fn incr_plan(&self) -> bvq_core::IncrPlan {
        match self {
            Prepared::Query(p) => bvq_core::classify_formula(&p.query.formula),
            Prepared::Eso(_) => bvq_core::IncrPlan {
                strategy: bvq_core::Strategy::Rediff,
                reason: "second-order quantification has no delta semantics",
            },
            Prepared::Datalog(p) => bvq_core::classify_datalog(p.program.is_recursive()),
        }
    }
}

/// The shape of an answer, by query kind.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Answer {
    /// A sentence's truth value.
    Boolean(bool),
    /// Answer tuples of a query with output variables.
    Rows(Relation),
    /// A rendered textual report (ESO sentences/queries, which also
    /// report grounding sizes and witnesses).
    Text(String),
}

/// What [`execute_prepared`] returns: the answer plus everything the
/// front-ends render around it.
#[derive(Clone, Debug)]
pub struct ExecOutcome {
    /// The language that was dispatched.
    pub language: Language,
    /// The effective variable bound.
    pub k: usize,
    /// The query width.
    pub width: usize,
    /// Minimization note, when `--minimize` reduced the width.
    pub minimized: Option<String>,
    /// The answer.
    pub answer: Answer,
    /// Evaluation statistics.
    pub stats: EvalStats,
    /// The measured span tree, when the request set `trace`.
    pub trace: Option<Span>,
    /// The encoded certificate, when the request set
    /// [`EvalOptions::certificate`] and production succeeded. Always
    /// cross-checked against [`answer`](Self::answer) before being
    /// attached — a divergent claim is a producer bug and surfaces as
    /// [`RunError::NotCertifiable`] instead of a lying certificate.
    pub certificate: Option<String>,
}

/// Parses and classifies a query, applying `--minimize` and resolving
/// the effective `k`. Pure function of `(query text, options)` — which
/// is exactly why the server can cache its output keyed by those.
pub fn prepare(query: &str, opts: &EvalOptions) -> Result<Plan, RunError> {
    let mut q: Query = parse_query(query).map_err(|e| RunError::Parse(e.to_string()))?;
    let mut minimized = None;
    if opts.minimize {
        let slim = q.formula.minimize_width().ok_or_else(|| {
            RunError::InvalidOption("--minimize applies to first-order queries only".into())
        })?;
        if slim.width() < q.formula.width() {
            minimized = Some(format!(
                "minimized width {} → {}",
                q.formula.width(),
                slim.width()
            ));
        }
        q = Query::new(q.output, slim);
    }
    let width = q
        .formula
        .width()
        .max(q.output.iter().map(|v| v.index() + 1).max().unwrap_or(0))
        .max(1);
    let k = opts.k.unwrap_or(width);
    let language = if q.formula.is_first_order() {
        Language::Fo
    } else if q.formula.is_fp() {
        Language::Fp
    } else {
        Language::Pfp
    };
    if opts.naive && language != Language::Fo {
        return Err(RunError::InvalidOption(
            "--naive applies to first-order queries only".into(),
        ));
    }
    if opts.naive && opts.backend != BackendMode::Auto {
        return Err(RunError::InvalidOption(
            "--backend applies to the cylindrical evaluators; it cannot be combined with --naive"
                .into(),
        ));
    }
    Ok(Plan {
        query: q,
        language,
        width,
        k,
        minimized,
        feedback: FeedbackCell::default(),
    })
}

/// Parses and classifies a request of any kind into a cacheable
/// [`Prepared`] plan.
pub fn prepare_request(req: &ExecRequest) -> Result<Prepared, RunError> {
    match &req.kind {
        ExecKind::Query { text } => prepare(text, &req.opts).map(Prepared::Query),
        ExecKind::Eso { text } => {
            if req.opts.backend != BackendMode::Auto {
                return Err(RunError::InvalidOption(
                    "--backend applies to FO/FP/PFP and Datalog requests only".into(),
                ));
            }
            let eso = parse_eso(text).map_err(|e| RunError::Parse(e.to_string()))?;
            let width = eso.width().max(1);
            let k = req.opts.k.unwrap_or(width);
            let free = eso.body.free_vars();
            Ok(Prepared::Eso(EsoPlan {
                eso,
                k,
                width,
                free,
            }))
        }
        ExecKind::Datalog { program, .. } => {
            if req.opts.naive && req.opts.backend != BackendMode::Auto {
                return Err(RunError::InvalidOption(
                    "--backend applies to the cylindrical evaluators; it cannot be combined with --naive"
                        .into(),
                ));
            }
            let program = bvq_datalog::parse_program(program)?;
            Ok(Prepared::Datalog(DatalogPlan { program }))
        }
    }
}

/// Runs a request end to end: [`prepare_request`] then
/// [`execute_prepared`].
pub fn execute(db: &Database, req: &ExecRequest) -> Result<ExecOutcome, RunError> {
    let prepared = prepare_request(req)?;
    execute_prepared(db, &prepared, req)
}

/// Evaluates a prepared plan against a database — **the** dispatcher
/// every front-end funnels through: FO (bounded or naive), FP, PFP/IFP,
/// ESO and Datalog all branch here and nowhere else. When `req.trace`
/// is set, the outcome carries the evaluator's span tree.
pub fn execute_prepared(
    db: &Database,
    prepared: &Prepared,
    req: &ExecRequest,
) -> Result<ExecOutcome, RunError> {
    let mut outcome = execute_plain(db, prepared, req)?;
    if req.opts.certificate {
        outcome.certificate = Some(produce_certificate(db, prepared, req, &outcome)?);
    }
    Ok(outcome)
}

/// The certificate-free evaluation path: everything
/// [`execute_prepared`] does except certificate production.
fn execute_plain(
    db: &Database,
    prepared: &Prepared,
    req: &ExecRequest,
) -> Result<ExecOutcome, RunError> {
    validate_schema(db, prepared)?;
    let cfg = req.opts.config().with_trace(req.trace);
    match prepared {
        Prepared::Query(plan) => {
            let q = &plan.query;
            let k = plan.k;
            let out: Evaluated = if req.opts.naive {
                NaiveEvaluator::new(db)
                    .with_config(cfg)
                    .eval_query_traced(q)?
            } else if let Some(out) = try_compiled_query(db, plan, req, &cfg)? {
                out
            } else {
                let backend = req.opts.backend;
                let out = match plan.language {
                    Language::Fo => BoundedEvaluator::new(db, k)
                        .with_config(cfg)
                        .with_backend(backend)
                        .eval_query_traced(q)?,
                    Language::Fp => FpEvaluator::new(db, k)
                        .with_config(cfg)
                        .with_backend(backend)
                        .eval_query_traced(q)?,
                    _ => PfpEvaluator::new(db, k)
                        .with_config(cfg)
                        .with_backend(backend)
                        .eval_query_traced(q)?,
                };
                // Interpreted runs calibrate the cost model too: the
                // observed round count feeds the next planning pass for
                // this cached plan.
                plan.feedback.set(feedback_from(&out.stats));
                out
            };
            let answer = if q.output.is_empty() {
                Answer::Boolean(out.answer.as_boolean())
            } else {
                Answer::Rows(out.answer)
            };
            Ok(ExecOutcome {
                language: plan.language,
                k: plan.k,
                width: plan.width,
                minimized: plan.minimized.clone(),
                answer,
                stats: out.stats,
                trace: out.trace,
                certificate: None,
            })
        }
        Prepared::Eso(plan) => execute_eso(db, plan, req),
        Prepared::Datalog(plan) => {
            let ExecKind::Datalog { output, .. } = &req.kind else {
                return Err(RunError::InvalidOption(
                    "a Datalog plan requires a Datalog request".into(),
                ));
            };
            if req.opts.backend != BackendMode::Auto {
                // The rule engine has its own tuple representation; a
                // forced backend routes through the FP translation so
                // the cylindrical evaluator honors the choice.
                return execute_datalog_backend(db, plan, req, output, &cfg);
            }
            let out = if req.opts.naive {
                eval_naive_with(&plan.program, db, &cfg)?
            } else if req.trace || req.opts.compile == CompileMode::Off {
                // Rule kernels carry no span tracing; traced requests
                // keep the interpreter's round-by-round span tree.
                eval_seminaive_with(&plan.program, db, &cfg)?
            } else {
                bvq_datalog::eval_compiled_with(&plan.program, db, &cfg)?
            };
            let rel = out
                .get(output)
                .ok_or_else(|| RunError::UnknownOutput(output.clone()))?
                .clone();
            let width = datalog_width(&plan.program);
            Ok(ExecOutcome {
                language: Language::Datalog,
                k: width,
                width,
                minimized: None,
                answer: Answer::Rows(rel),
                stats: out.stats,
                trace: out.trace,
                certificate: None,
            })
        }
    }
}

/// The compiled arm of the query dispatch: plans the query with the
/// cached feedback and runs the bytecode when the cost model (or a
/// forced `--compile on`) selects it. Returns `Ok(None)` when the
/// interpreted path should run instead — tracing requested, compilation
/// disabled, the cost model preferring the interpreter, or (under
/// `Auto`) the plan not lowering (e.g. ESO constructs).
fn try_compiled_query(
    db: &Database,
    plan: &Plan,
    req: &ExecRequest,
    cfg: &EvalConfig,
) -> Result<Option<Evaluated>, RunError> {
    // Forced backends interpret: the bytecode kernels are written
    // against the dense/sparse representations the cost model picks,
    // so an explicit `--backend` pins the interpreted dispatch instead.
    if req.trace || req.opts.compile == CompileMode::Off || req.opts.backend != BackendMode::Auto {
        return Ok(None);
    }
    let allow_pfp = matches!(plan.language, Language::Pfp);
    let feedback = plan.feedback.get();
    let qp = match plan_query(db, &plan.query, plan.k, allow_pfp, feedback.as_ref()) {
        Ok(qp) => qp,
        Err(e) if req.opts.compile == CompileMode::On => return Err(e.into()),
        Err(_) => return Ok(None),
    };
    if req.opts.compile != CompileMode::On && qp.choice() == PlanChoice::Interpreted {
        return Ok(None);
    }
    let out = qp.eval_compiled(db, cfg)?;
    plan.feedback.set(feedback_from(&out.stats));
    Ok(Some(out))
}

/// The Datalog arm of a forced `--backend`: translates the program to
/// an FP least fixpoint ([`bvq_datalog::to_fp_formula_multi`]) and runs
/// the cylindrical fixpoint evaluator on the requested backend. The
/// translation is the same bridge the differential fuzz oracle crosses,
/// so answers match the rule engine's.
fn execute_datalog_backend(
    db: &Database,
    plan: &DatalogPlan,
    req: &ExecRequest,
    output: &str,
    cfg: &EvalConfig,
) -> Result<ExecOutcome, RunError> {
    let formula = bvq_datalog::to_fp_formula_multi(&plan.program, output).map_err(|e| match e {
        DatalogError::UnknownPredicate(p) => RunError::UnknownOutput(p),
        e => RunError::Datalog(e),
    })?;
    let arity = plan
        .program
        .idb_predicates()
        .iter()
        .find(|(p, _)| p == output)
        .map(|(_, a)| *a)
        .unwrap_or(0);
    let q = Query::new((0..arity as u32).map(Var).collect(), formula);
    let k = q.formula.width().max(arity).max(1);
    let out = FpEvaluator::new(db, k)
        .with_config(*cfg)
        .with_backend(req.opts.backend)
        .eval_query_traced(&q)?;
    let width = datalog_width(&plan.program);
    Ok(ExecOutcome {
        language: Language::Datalog,
        k: width,
        width,
        minimized: None,
        answer: Answer::Rows(out.answer),
        stats: out.stats,
        trace: out.trace,
        certificate: None,
    })
}

/// Produces the encoded certificate for an executed request, then
/// cross-checks the certificate's claim against the answer the engine
/// itself computed — the two come from *independent* code paths, so a
/// divergence means one of them is wrong and no certificate is emitted.
fn produce_certificate(
    db: &Database,
    prepared: &Prepared,
    req: &ExecRequest,
    outcome: &ExecOutcome,
) -> Result<String, RunError> {
    use bvq_cert::Claim;
    let not = |m: String| RunError::NotCertifiable(m);
    let cert = match prepared {
        Prepared::Query(plan) => {
            bvq_core::certgen::certify_query(db, &plan.query).map_err(|e| not(e.to_string()))?
        }
        Prepared::Datalog(plan) => {
            let ExecKind::Datalog { output, .. } = &req.kind else {
                return Err(RunError::InvalidOption(
                    "a Datalog plan requires a Datalog request".into(),
                ));
            };
            bvq_core::certgen::certify_datalog(db, &plan.program, output)
                .map_err(|e| not(e.to_string()))?
        }
        Prepared::Eso(plan) => {
            if !plan.free.is_empty() {
                return Err(not(
                    "ESO queries with free variables have no witness certificate".into(),
                ));
            }
            bvq_core::certify_eso(db, &plan.eso, plan.k).map_err(|e| not(e.to_string()))?
        }
    };
    let claim_matches = match (&cert.claim, &outcome.answer) {
        (Claim::Boolean(b), Answer::Boolean(a)) => a == b,
        (Claim::Rows { rows, .. }, Answer::Rows(rel)) => {
            rel.len() == rows.len() && rows.iter().all(|t| rel.contains(t))
        }
        // The ESO arm renders a textual report; a witness certificate
        // exists only for satisfiable sentences.
        (Claim::Boolean(true), Answer::Text(t)) => t.contains("sentence: true"),
        _ => false,
    };
    if !claim_matches {
        return Err(not(
            "certificate claim diverged from the engine's own answer".into(),
        ));
    }
    Ok(cert.encode())
}

/// Validates a certificate (e.g. one returned by an untrusted replica)
/// against a prepared request using the trusted [`bvq_cert`] checker,
/// with **zero reference to any evaluator**. `Ok` is the now-verified
/// answer, safe to serve and cache; `Err` carries the structured
/// rejection (`reject.code()` is the stable stats/wire token).
pub fn check_certificate(
    db: &Database,
    prepared: &Prepared,
    req: &ExecRequest,
    cert_text: &str,
) -> Result<Answer, bvq_cert::Reject> {
    let creq = match prepared {
        Prepared::Query(p) => bvq_cert::CheckRequest::Query(&p.query),
        Prepared::Datalog(p) => {
            let ExecKind::Datalog { output, .. } = &req.kind else {
                return Err(bvq_cert::Reject::Unsupported(
                    "a Datalog plan requires a Datalog request".into(),
                ));
            };
            bvq_cert::CheckRequest::Datalog {
                program: &p.program,
                output,
            }
        }
        Prepared::Eso(p) => bvq_cert::CheckRequest::Eso(&p.eso),
    };
    Ok(match bvq_cert::check_text(db, &creq, cert_text)? {
        bvq_cert::CheckedAnswer::Boolean(b) => Answer::Boolean(b),
        bvq_cert::CheckedAnswer::Rows(rel) => Answer::Rows(rel),
    })
}

/// `(k, width)` of a prepared plan, for rendering a payload built from
/// a checked certificate — no execution happened, so there is no
/// [`ExecOutcome`] to read the dimensions from. Datalog plans report
/// `(0, 0)`, matching what the wire omits for them anyway.
pub fn plan_dims(prepared: &Prepared) -> (usize, usize) {
    match prepared {
        Prepared::Query(p) => (p.k, p.width),
        Prepared::Eso(p) => (p.k, p.width),
        Prepared::Datalog(_) => (0, 0),
    }
}

/// The database's relation schema as `(name, arity)` pairs.
pub fn db_schema(db: &Database) -> Vec<(String, usize)> {
    db.schema()
        .iter()
        .map(|(_, name, arity)| (name.to_string(), arity))
        .collect()
}

/// Validates every database relation a plan references against the
/// database's schema, so unknown names and arity mismatches fail with a
/// structured [`RunError::Schema`] *before* evaluation instead of deep
/// inside (or silently past) an evaluator.
fn validate_schema(db: &Database, prepared: &Prepared) -> Result<(), RunError> {
    let schema = db.schema();
    let check = |name: &str, found: usize| -> Result<(), RunError> {
        match schema.resolve(name) {
            None => Err(RunError::Schema {
                name: name.to_string(),
                expected: None,
                found,
            }),
            Some(id) if schema.arity(id) != found => Err(RunError::Schema {
                name: name.to_string(),
                expected: Some(schema.arity(id)),
                found,
            }),
            Some(_) => Ok(()),
        }
    };
    match prepared {
        Prepared::Query(p) => {
            for (name, arity) in p.query.formula.db_relations() {
                check(&name, arity)?;
            }
        }
        Prepared::Eso(p) => {
            for (name, arity) in p.eso.body.db_relations() {
                check(&name, arity)?;
            }
        }
        Prepared::Datalog(p) => {
            let idb = p.program.idb_predicates();
            for r in &p.program.rules {
                for a in &r.body {
                    if idb.iter().any(|(n, _)| *n == a.pred) {
                        continue;
                    }
                    check(&a.pred, a.args.len())?;
                }
            }
        }
    }
    Ok(())
}

/// Lints a request with the database's schema and domain size filled in
/// — the static-analysis twin of [`execute_prepared`]: zero evaluation.
pub fn lint_with_db(
    db: &Database,
    req: &ExecRequest,
    budget: Option<u128>,
) -> bvq_lint::LintReport {
    let cfg = bvq_lint::LintConfig {
        budget,
        domain_size: Some(db.domain_size()),
        schema: Some(db_schema(db)),
    };
    lint_request(req, &cfg)
}

/// Lints a request against an explicit configuration (no database
/// required — pure text analysis).
pub fn lint_request(req: &ExecRequest, cfg: &bvq_lint::LintConfig) -> bvq_lint::LintReport {
    match &req.kind {
        ExecKind::Query { text } => bvq_lint::lint_query_text(text, cfg),
        ExecKind::Eso { text } => bvq_lint::lint_eso_text(text, cfg),
        ExecKind::Datalog { program, output } => {
            // An empty output means "the program's default" (the last
            // rule's head) — the CLI lints programs without naming one.
            let output = (!output.is_empty()).then_some(output.as_str());
            bvq_lint::lint_datalog_text(program, output, cfg)
        }
    }
}

/// The verdict of the `--max-width` admission gate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WidthAdmission {
    /// Width within budget (or the request does not parse — parse
    /// errors surface later with their own error code).
    Admit,
    /// Over budget as written, but the analyzer certified an equivalent
    /// rewrite that fits: `text` is the replacement query.
    Rewrite {
        /// The full replacement query text, `(outputs) formula`.
        text: String,
        /// The request's syntactic width.
        width: usize,
        /// The certified width of the rewrite.
        k_min: usize,
    },
    /// Over budget even with the best certified rewrite.
    Reject {
        /// The request's width.
        width: usize,
        /// The budget it exceeds.
        budget: usize,
    },
}

/// Applies a `--max-width` admission budget to a request.
///
/// FO/FP/PFP queries over budget are auto-rewritten when the hypergraph
/// analyzer emits a **certified** variable-minimizing rewrite fitting
/// the budget — the validator must have accepted the certificate; a
/// claimed `k_min` alone is never trusted. Otherwise they are rejected,
/// as are over-budget ESO and Datalog requests (no rewriter exists for
/// those fragments).
pub fn admit_width(req: &ExecRequest, budget: usize) -> WidthAdmission {
    let Ok(prepared) = prepare_request(req) else {
        return WidthAdmission::Admit;
    };
    let width = match &prepared {
        Prepared::Query(p) => p.width,
        Prepared::Eso(p) => p.width,
        Prepared::Datalog(p) => datalog_width(&p.program),
    };
    if width <= budget {
        return WidthAdmission::Admit;
    }
    if let Prepared::Query(p) = &prepared {
        let analysis = bvq_analysis::analyze_query(&p.query);
        if analysis.certified == Some(true) && analysis.k_min <= budget {
            let cert = analysis
                .certificate
                .expect("certified implies a certificate");
            let text = Query::new(p.query.output.clone(), cert.rewritten).to_string();
            return WidthAdmission::Rewrite {
                text,
                width,
                k_min: analysis.k_min,
            };
        }
    }
    WidthAdmission::Reject { width, budget }
}

/// Serializes a [`bvq_lint::LintReport`] for the wire protocol and the
/// CLI's `--json` mode. The `bound` is a string (it may exceed JSON's
/// exact integer range).
pub fn lint_json(report: &bvq_lint::LintReport) -> Json {
    let (errors, warnings, suggestions, infos) = report.counts();
    let mut fields = vec![
        ("language", Json::str(report.language.clone())),
        ("width", Json::num(report.width as u64)),
        ("data_complexity", Json::str(report.data_complexity.clone())),
        (
            "combined_complexity",
            Json::str(report.combined_complexity.clone()),
        ),
        (
            "expression_complexity",
            Json::str(report.expression_complexity.clone()),
        ),
        ("errors", Json::num(errors as u64)),
        ("warnings", Json::num(warnings as u64)),
        ("suggestions", Json::num(suggestions as u64)),
        ("infos", Json::num(infos as u64)),
    ];
    if let Some(k2) = report.min_width {
        fields.push(("min_width", Json::num(k2 as u64)));
    }
    if let Some(rw) = &report.rewritten {
        fields.push(("rewritten", Json::str(rw.clone())));
    }
    if let Some(b) = report.bound {
        fields.push(("bound", Json::str(b.to_string())));
    }
    if let Some(acyclic) = report.acyclic {
        fields.push(("acyclic", Json::Bool(acyclic)));
    }
    if let Some(certified) = report.certified {
        fields.push(("certified", Json::Bool(certified)));
    }
    let diags: Vec<Json> = report
        .diagnostics
        .iter()
        .map(|d| {
            let mut obj = vec![
                ("code", Json::str(d.code)),
                ("severity", Json::str(d.severity.label())),
                ("message", Json::str(d.message.clone())),
            ];
            if let Some(span) = d.span {
                obj.push((
                    "span",
                    Json::obj([
                        ("start", Json::num(span.start as u64)),
                        ("end", Json::num(span.end as u64)),
                    ]),
                ));
            }
            if let Some(help) = &d.help {
                obj.push(("help", Json::str(help.clone())));
            }
            Json::obj(obj)
        })
        .collect();
    fields.push(("diagnostics", Json::Arr(diags)));
    Json::obj(fields)
}

/// The maximum head arity of a program — the Datalog analogue of width.
fn datalog_width(program: &Program) -> usize {
    program
        .rules
        .iter()
        .map(|r| r.head.vars.len())
        .max()
        .unwrap_or(0)
}

/// The ESO arm of [`execute_prepared`]: sentences go through the
/// grounding checker (with witness extraction on satisfiable
/// sentences), queries through per-tuple checks. Both render the same
/// textual report `run_eso` has always produced.
fn execute_eso(db: &Database, plan: &EsoPlan, req: &ExecRequest) -> Result<ExecOutcome, RunError> {
    let cfg = req.opts.config().with_trace(req.trace);
    let ev = EsoEvaluator::new(db, plan.k).with_config(cfg);
    let k = plan.k;
    let mut text = String::new();
    let (stats, trace) = if plan.free.is_empty() {
        let mut tracer = Tracer::new(req.trace);
        if tracer.is_enabled() {
            tracer.open();
        }
        let (sat, info) = ev.check_traced(&plan.eso, &[], &[], &mut tracer)?;
        if tracer.is_enabled() {
            tracer.close(
                "eso",
                truncate_detail(&plan.eso.to_string(), 64),
                0,
                sat as usize,
                None,
            );
        }
        text.push_str(&format!(
            "ESO^{k} sentence: {sat}\ngrounding: {} vars, {} clauses, {} quantified tuples\n",
            info.sat_vars, info.clauses, info.referenced_tuples
        ));
        if sat {
            if let Some(env) = ev.check_with_witness(&plan.eso, &[], &[])? {
                for (name, rel) in env.iter() {
                    text.push_str(&format!("witness {name} = {:?}\n", rel.sorted()));
                }
            }
        }
        let mut stats = EvalStats::new();
        stats.record_intermediate(k, info.referenced_tuples);
        (stats, tracer.finish())
    } else {
        let out = ev.eval_query_traced(&plan.eso, &plan.free)?;
        text.push_str(&format!(
            "ESO^{k} answers over {:?}: {:?}\n",
            plan.free,
            out.answer.sorted()
        ));
        (out.stats, out.trace)
    };
    Ok(ExecOutcome {
        language: Language::Eso,
        k,
        width: plan.width,
        minimized: None,
        answer: Answer::Text(text),
        stats,
        trace,
        certificate: None,
    })
}

/// Runs a request and renders the full CLI/REPL report: language line,
/// answer, stats, certifications, and (when `req.trace` is set) the
/// rendered span tree.
pub fn run_request(db: &Database, req: &ExecRequest) -> Result<String, RunError> {
    let prepared = prepare_request(req)?;
    let outcome = execute_prepared(db, &prepared, req)?;
    let mut out = String::new();
    if let Prepared::Query(plan) = &prepared {
        out.push_str(&format!(
            "language: {}^{} (width {})\n",
            plan.language_label(),
            plan.k,
            plan.width
        ));
        if let Some(note) = &plan.minimized {
            out.push_str(note);
            out.push('\n');
        }
    }
    render_answer(&mut out, &outcome.answer);
    if matches!(prepared, Prepared::Query(_) | Prepared::Datalog(_)) {
        out.push_str(&format!("stats: {}\n", outcome.stats));
    }
    if let Prepared::Query(plan) = &prepared {
        for t in &req.opts.certify {
            let q = &plan.query;
            if !q.formula.is_fp() || q.formula.is_first_order() {
                return Err(RunError::InvalidOption(
                    "--certify applies to FP (lfp/gfp) queries only".into(),
                ));
            }
            let checker = CertifiedChecker::new(db, plan.k);
            let (member, size, vstats) = checker.decide(q, t)?;
            out.push_str(&format!(
                "certify {t:?}: member = {member} ({} certificate tuples, {} verify applications)\n",
                size, vstats.fixpoint_iterations
            ));
        }
    }
    if let Some(trace) = &outcome.trace {
        out.push_str("trace:\n");
        out.push_str(&trace.render());
    }
    Ok(out)
}

/// Evaluates a query string against the database, returning the rendered
/// report (also used by the REPL and `bvq eval`).
pub fn run_eval(db: &Database, query: &str, opts: &EvalOptions) -> Result<String, RunError> {
    run_request(
        db,
        &ExecRequest {
            kind: ExecKind::Query {
                text: query.to_string(),
            },
            opts: opts.clone(),
            trace: false,
        },
    )
}

/// Evaluates an ESO sentence/query string.
pub fn run_eso(db: &Database, query: &str, k: Option<usize>) -> Result<String, RunError> {
    run_request(
        db,
        &ExecRequest {
            kind: ExecKind::Eso {
                text: query.to_string(),
            },
            opts: EvalOptions {
                k,
                ..Default::default()
            },
            trace: false,
        },
    )
}

fn render_answer(out: &mut String, answer: &Answer) {
    match answer {
        Answer::Boolean(b) => out.push_str(&format!("answer: {b}\n")),
        Answer::Rows(rel) => {
            let rows = rel.sorted();
            out.push_str(&format!("answer: {} tuples\n", rows.len()));
            for t in rows.iter().take(50) {
                out.push_str(&format!("  {t}\n"));
            }
            if rows.len() > 50 {
                out.push_str(&format!("  … and {} more\n", rows.len() - 50));
            }
        }
        Answer::Text(t) => out.push_str(t),
    }
}

/// What `explain` reports about a request: the width analysis, backend
/// choice, the `n^k` intermediate-size bound of Proposition 3.1, the
/// cache key, and a plan tree — static (estimated rows, zero timings)
/// or measured (`analyze`).
#[derive(Clone, Debug)]
pub struct ExplainReport {
    /// The language the request dispatches to.
    pub language: Language,
    /// Display label, e.g. `FO^2` or `DATALOG`.
    pub label: String,
    /// The effective variable bound.
    pub k: usize,
    /// The query width.
    pub width: usize,
    /// The evaluation backend: `dense`/`sparse`/`bdd` cylindrical
    /// (chosen or forced — see [`bvq_relation::backend::choose`]),
    /// `naive`, `sat-grounding`, or `seminaive`.
    pub backend: &'static str,
    /// The `n^k` intermediate-size bound, rendered.
    pub bound: String,
    /// The plan/result cache key for this request.
    pub cache_key: String,
    /// The execution engine a (non-traced) run of this request would
    /// use: `interpreted`, `compiled (basic|optimized)`, `naive`, or
    /// `compiled (rule kernels)` for Datalog.
    pub engine: String,
    /// The cost model's report lines (queries only; empty otherwise).
    pub cost: Vec<String>,
    /// The bytecode listing of the compiled candidate, when the request
    /// lowers (queries only).
    pub bytecode: Option<String>,
    /// Minimization note, when `--minimize` reduced the width.
    pub minimized: Option<String>,
    /// How a standing query over this plan would be maintained under
    /// mutations: `counting`/`dred`/`rediff` plus the deciding construct
    /// (the IVM fallback matrix, [`bvq_core::incr`]).
    pub maintenance: String,
    /// The hypergraph analyzer's verdict lines (queries only; empty
    /// otherwise): syntactic width vs certified minimum width, whether
    /// the conjunctive core is α-acyclic, and the elimination order.
    pub analysis: Vec<String>,
    /// The plan tree: static shape for `explain`, the measured span
    /// tree for `explain analyze`.
    pub plan: Span,
    /// Measured statistics, present only under `analyze`.
    pub analyzed: Option<EvalStats>,
    /// The static-analysis report for the same request: fragment
    /// classification (Tables 1–3) and lint diagnostics, inlined so
    /// `explain` surfaces problems before anyone runs the query.
    pub lint: bvq_lint::LintReport,
}

/// Explains a request without (or, with `analyze`, after) running it.
///
/// The static plan mirrors what the trace of an actual run looks like:
/// one node per operator, `rows` filled with the `n^arity` bound that
/// Proposition 3.1 guarantees per subformula, timings zero. Under
/// `analyze` the request is executed with tracing forced on and the
/// measured tree replaces the estimate.
pub fn explain(db: &Database, req: &ExecRequest, analyze: bool) -> Result<ExplainReport, RunError> {
    let prepared = prepare_request(req)?;
    explain_prepared(db, &prepared, req, analyze)
}

/// [`explain`] over an already-prepared plan — what the server calls so
/// explain shares the plan cache with the op it explains.
pub fn explain_prepared(
    db: &Database,
    prepared: &Prepared,
    req: &ExecRequest,
    analyze: bool,
) -> Result<ExplainReport, RunError> {
    let n = db.domain_size();
    let (label, k, width, minimized, backend, plan) = match prepared {
        Prepared::Query(p) => {
            let backend = if req.opts.naive {
                "naive"
            } else {
                // The same per-operation choice the evaluator makes:
                // forced mode wins, otherwise the cost model weighs the
                // dense budget against the complement hint.
                let hints = ChoiceHints {
                    needs_complement: formula_needs_complement(&p.query.formula),
                };
                choose(&CylCtx::new(n.max(1), p.k), req.opts.backend, hints).label()
            };
            (
                format!("{}^{}", p.language_label(), p.k),
                p.k,
                p.width,
                p.minimized.clone(),
                backend,
                formula_plan(&p.query.formula, n),
            )
        }
        Prepared::Eso(p) => (
            format!("ESO^{}", p.k),
            p.k,
            p.width,
            None,
            "sat-grounding",
            eso_plan(p, n),
        ),
        Prepared::Datalog(p) => {
            let backend = if req.opts.naive {
                "naive"
            } else if let Some(forced) = req.opts.backend.forced() {
                forced.label()
            } else {
                "seminaive"
            };
            let w = datalog_width(&p.program);
            (
                "DATALOG".to_string(),
                w,
                w,
                None,
                backend,
                datalog_plan(&p.program, n),
            )
        }
    };
    let bound = bound_string(n, k);
    let analysis = match prepared {
        Prepared::Query(p) => bvq_analysis::analyze_query(&p.query).verdict_lines(),
        _ => Vec::new(),
    };
    let (engine, cost, bytecode) = explain_engine(db, prepared, req);
    let (plan, analyzed) = if analyze {
        let mut traced = req.clone();
        traced.trace = true;
        let outcome = execute_prepared(db, prepared, &traced)?;
        (outcome.trace.unwrap_or(plan), Some(outcome.stats))
    } else {
        (plan, None)
    };
    Ok(ExplainReport {
        language: prepared.language(),
        label,
        k,
        width,
        backend,
        bound,
        cache_key: req.cache_key(),
        engine,
        cost,
        bytecode,
        minimized,
        analysis,
        maintenance: {
            let ip = prepared.incr_plan();
            format!("{} — {}", ip.strategy.label(), ip.reason)
        },
        plan,
        analyzed,
        lint: lint_with_db(db, req, None),
    })
}

/// The engine rows of an [`ExplainReport`]: what a non-traced run of
/// this request would execute on, with the cost model's numbers and the
/// bytecode listing when the request lowers.
fn explain_engine(
    db: &Database,
    prepared: &Prepared,
    req: &ExecRequest,
) -> (String, Vec<String>, Option<String>) {
    let interpreted = (String::from("interpreted"), Vec::new(), None);
    match prepared {
        Prepared::Query(_) if req.opts.naive => (String::from("naive"), Vec::new(), None),
        Prepared::Query(_) | Prepared::Datalog(_) if req.opts.backend.forced().is_some() => {
            // Forced backends pin the interpreted dispatch (see
            // `try_compiled_query`); Datalog routes via the FP
            // translation.
            interpreted
        }
        Prepared::Query(p) if req.opts.compile != CompileMode::Off => {
            let allow_pfp = matches!(p.language, Language::Pfp);
            match plan_query(db, &p.query, p.k, allow_pfp, p.feedback.get().as_ref()) {
                Ok(qp) => {
                    let choice = if req.opts.compile == CompileMode::On {
                        PlanChoice::Compiled(qp.compiled_variant())
                    } else {
                        qp.choice()
                    };
                    (choice.label(), qp.cost().render_lines(), Some(qp.listing()))
                }
                Err(_) => interpreted,
            }
        }
        Prepared::Datalog(_) if !req.opts.naive && req.opts.compile != CompileMode::Off => {
            (String::from("compiled (rule kernels)"), Vec::new(), None)
        }
        _ => interpreted,
    }
}

/// Renders an [`ExplainReport`] for the CLI / REPL.
pub fn run_explain(db: &Database, req: &ExecRequest, analyze: bool) -> Result<String, RunError> {
    let report = explain(db, req, analyze)?;
    let mut out = String::new();
    out.push_str(&format!(
        "language: {} (width {})\n",
        report.label, report.width
    ));
    if let Some(note) = &report.minimized {
        out.push_str(note);
        out.push('\n');
    }
    out.push_str(&format!("backend: {}\n", report.backend));
    out.push_str(&format!("engine: {}\n", report.engine));
    for line in &report.cost {
        out.push_str(line);
        out.push('\n');
    }
    out.push_str(&format!("bound: {}\n", report.bound));
    for line in &report.analysis {
        out.push_str(line);
        out.push('\n');
    }
    out.push_str(&format!("cache key: {}\n", report.cache_key));
    out.push_str(&format!("maintenance: {}\n", report.maintenance));
    out.push_str(&format!(
        "complexity: data {} [Table 1], combined {} [Table 2]\n",
        report.lint.data_complexity, report.lint.combined_complexity
    ));
    for d in &report.lint.diagnostics {
        out.push_str(&format!("{d}\n"));
    }
    if let Some(stats) = &report.analyzed {
        out.push_str(&format!("measured: {stats}\n"));
    }
    out.push_str(if report.analyzed.is_some() {
        "plan (measured):\n"
    } else {
        "plan (estimated rows):\n"
    });
    out.push_str(&report.plan.render());
    if let Some(bc) = &report.bytecode {
        out.push_str(bc);
    }
    Ok(out)
}

/// The rendered `n^k` bound, e.g. `n^2 = 4^2 = 16`.
fn bound_string(n: usize, k: usize) -> String {
    match (n as u128).checked_pow(k as u32) {
        Some(v) => format!("n^{k} = {n}^{k} = {v}"),
        None => format!("n^{k} = {n}^{k} (overflows)"),
    }
}

/// `n^arity`, saturating — the static row estimate for a plan node.
fn est_rows(n: usize, arity: usize) -> usize {
    (n as u128)
        .checked_pow(arity as u32)
        .map_or(usize::MAX, |v| v.min(usize::MAX as u128) as usize)
}

/// Whether evaluating `f` cylindrically takes complements (`~`,
/// `forall`, or a gfp/pfp fixpoint seeded from the full space) — the
/// hint [`choose`] weighs when the dense bitset space is infeasible:
/// complements stay cheap symbolically but explode sparse tuple sets.
/// The surface-syntax twin of the IR-level hint the evaluators compute.
fn formula_needs_complement(f: &Formula) -> bool {
    match f {
        Formula::Not(_) | Formula::Forall(..) => true,
        Formula::Fix { kind, body, .. } => {
            matches!(kind, FixKind::Gfp | FixKind::Pfp) || formula_needs_complement(body)
        }
        Formula::And(a, b) | Formula::Or(a, b) => {
            formula_needs_complement(a) || formula_needs_complement(b)
        }
        Formula::Exists(_, g) => formula_needs_complement(g),
        _ => false,
    }
}

/// The static plan tree of a formula: node kinds match what the traced
/// evaluators emit, so `explain` and `explain analyze` trees line up.
fn formula_plan(f: &Formula, n: usize) -> Span {
    let kind = match f {
        Formula::Const(_) => "const",
        Formula::Atom(_) => "atom",
        Formula::Eq(..) => "eq",
        Formula::Not(_) => "not",
        Formula::And(..) => "and",
        Formula::Or(..) => "or",
        Formula::Exists(..) => "exists",
        Formula::Forall(..) => "forall",
        Formula::Fix { kind, .. } => match kind {
            FixKind::Lfp => "lfp",
            FixKind::Gfp => "gfp",
            FixKind::Pfp => "pfp",
            FixKind::Ifp => "ifp",
        },
    };
    let arity = f.free_vars().len();
    let mut span = Span::leaf(
        kind,
        truncate_detail(&f.to_string(), 64),
        arity,
        est_rows(n, arity),
    );
    span.children = match f {
        Formula::Not(g) | Formula::Exists(_, g) | Formula::Forall(_, g) => {
            vec![formula_plan(g, n)]
        }
        Formula::And(a, b) | Formula::Or(a, b) => vec![formula_plan(a, n), formula_plan(b, n)],
        Formula::Fix { body, .. } => vec![formula_plan(body, n)],
        _ => Vec::new(),
    };
    span
}

/// The static plan of an ESO request: ground then solve.
fn eso_plan(p: &EsoPlan, n: usize) -> Span {
    let mut root = Span::leaf(
        "eso",
        truncate_detail(&p.eso.to_string(), 64),
        p.free.len(),
        est_rows(n, p.free.len()),
    );
    root.children = vec![
        Span::leaf(
            "ground",
            format!("assignment space ≤ n^{}", p.k),
            p.k,
            est_rows(n, p.k),
        ),
        Span::leaf("solve", "cdcl", 0, 0),
    ];
    root
}

/// The static plan of a Datalog program: one node per rule.
fn datalog_plan(program: &Program, n: usize) -> Span {
    let arity = datalog_width(program);
    let mut root = Span::leaf(
        "datalog",
        format!("{} rules", program.rules.len()),
        arity,
        est_rows(n, arity),
    );
    root.children = program
        .rules
        .iter()
        .map(|r| {
            let a = r.head.vars.len();
            Span::leaf(
                "rule",
                truncate_detail(&r.to_string(), 64),
                a,
                est_rows(n, a),
            )
        })
        .collect();
    root
}

#[cfg(test)]
mod tests {
    use super::*;
    use bvq_relation::parse_database;

    fn db() -> Database {
        parse_database("domain 4\nrel E/2\n0 1\n1 2\n2 3\nend\nrel P/1\n2\nend").unwrap()
    }

    #[test]
    fn prepare_classifies_languages() {
        let fo = prepare("(x1) P(x1)", &EvalOptions::default()).unwrap();
        assert_eq!(fo.language, Language::Fo);
        let fp = prepare("(x1) [lfp S(x1). S(x1)](x1)", &EvalOptions::default()).unwrap();
        assert_eq!(fp.language, Language::Fp);
        let pfp = prepare("(x1) [pfp S(x1). ~S(x1)](x1)", &EvalOptions::default()).unwrap();
        assert_eq!(pfp.language, Language::Pfp);
    }

    #[test]
    fn error_codes_by_kind() {
        let parse = run_eval(&db(), "(x1) E(x1", &EvalOptions::default()).unwrap_err();
        assert_eq!(parse.code(), "parse_error");
        let opts = EvalOptions {
            naive: true,
            ..Default::default()
        };
        let invalid = run_eval(&db(), "(x1) [lfp S(x1). S(x1)](x1)", &opts).unwrap_err();
        assert_eq!(invalid.code(), "invalid_option");
        let unknown = run_eval(&db(), "(x1) Zap(x1)", &EvalOptions::default()).unwrap_err();
        assert_eq!(unknown.code(), "schema_error");
        let opts = EvalOptions {
            deadline: Some(Instant::now()),
            ..Default::default()
        };
        let deadline = run_eval(
            &db(),
            "(x1) [lfp S(x1). (x1 = 0 | exists x2. (S(x2) & E(x2,x1)))](x1)",
            &opts,
        )
        .unwrap_err();
        assert_eq!(deadline.code(), "deadline_exceeded");
        assert_eq!(deadline, RunError::Eval(EvalError::DeadlineExceeded));
    }

    #[test]
    fn run_eval_renders_like_before() {
        let out = run_eval(
            &db(),
            "(x1) exists x2. (E(x1,x2) & P(x2))",
            &EvalOptions::default(),
        )
        .unwrap();
        assert!(out.contains("language: FO^2"));
        assert!(out.contains("answer: 1 tuples"));
        assert!(out.contains("⟨1⟩"));
    }

    #[test]
    fn execute_dispatches_every_kind() {
        let db = db();
        // FO query → rows.
        let q = ExecRequest::query("(x1) exists x2. (E(x1,x2) & P(x2))");
        let out = execute(&db, &q).unwrap();
        assert_eq!(out.language, Language::Fo);
        let Answer::Rows(rows) = &out.answer else {
            panic!("expected rows")
        };
        assert!(rows.contains(&[1]));
        assert!(out.trace.is_none(), "trace off by default");
        // Sentence → boolean.
        let s = ExecRequest::query("() exists x1. P(x1)");
        let out = execute(&db, &s).unwrap();
        assert_eq!(out.answer, Answer::Boolean(true));
        // ESO sentence → text.
        let e = ExecRequest::eso("exists2 S/1. forall x1. (S(x1) -> P(x1))");
        let out = execute(&db, &e).unwrap();
        assert_eq!(out.language, Language::Eso);
        let Answer::Text(t) = &out.answer else {
            panic!("expected text")
        };
        assert!(t.contains("sentence: true"), "got: {t}");
        // Datalog → rows.
        let d = ExecRequest::datalog("T(x,y) :- E(x,y).\nT(x,z) :- T(x,y), E(y,z).", "T");
        let out = execute(&db, &d).unwrap();
        assert_eq!(out.language, Language::Datalog);
        let Answer::Rows(rows) = &out.answer else {
            panic!("expected rows")
        };
        assert_eq!(rows.len(), 6); // transitive closure of a 4-path
    }

    #[test]
    fn schema_mismatches_fail_structured_before_evaluation() {
        let db = db();
        // Unknown relation in an FO query.
        let err = execute(&db, &ExecRequest::query("(x1) Zap(x1)")).unwrap_err();
        assert_eq!(
            err,
            RunError::Schema {
                name: "Zap".into(),
                expected: None,
                found: 1
            }
        );
        assert_eq!(err.code(), "schema_error");
        assert!(err.to_string().contains("unknown relation `Zap`"));
        // Wrong arity in an FO query.
        let err = execute(&db, &ExecRequest::query("(x1) E(x1)")).unwrap_err();
        assert_eq!(
            err,
            RunError::Schema {
                name: "E".into(),
                expected: Some(2),
                found: 1
            }
        );
        assert!(err.to_string().contains("arity 2"), "{err}");
        // ESO bodies are checked too (quantified relations are exempt).
        let err = execute(&db, &ExecRequest::eso("exists2 S/1. (S(x1) & Zap(x1))")).unwrap_err();
        assert_eq!(err.code(), "schema_error");
        assert!(execute(&db, &ExecRequest::eso("exists2 S/1. (S(x1) & P(x1))")).is_ok());
        // Datalog EDB predicates are checked; IDB predicates are exempt.
        let err = execute(&db, &ExecRequest::datalog("T(x) :- E(x,x), Zap(x).", "T")).unwrap_err();
        assert_eq!(err.code(), "schema_error");
        let err = execute(&db, &ExecRequest::datalog("T(x,y) :- E(x,y,y).", "T")).unwrap_err();
        assert_eq!(err.code(), "schema_error");
        assert!(execute(&db, &ExecRequest::datalog("T(x,y) :- E(x,y).", "T")).is_ok());
    }

    #[test]
    fn lint_with_db_reports_without_evaluating() {
        let db = db();
        let r = lint_with_db(&db, &ExecRequest::query("(x1) ~P(x1)"), None);
        assert!(r.has_errors());
        assert!(r.diagnostics.iter().any(|d| d.code == "BVQ-E001"));
        // The database schema feeds the relation checks.
        let r = lint_with_db(&db, &ExecRequest::query("(x1) Zap(x1)"), None);
        assert!(r.diagnostics.iter().any(|d| d.code == "BVQ-E008"), "{r:?}");
        // And the domain size feeds the n^k budget.
        let r = lint_with_db(
            &db,
            &ExecRequest::query("(x1) exists x2. exists x3. (E(x1,x2) & E(x2,x3) & E(x3,x1))"),
            Some(10),
        );
        assert_eq!(r.bound, Some(64));
        assert!(r.diagnostics.iter().any(|d| d.code == "BVQ-W106"), "{r:?}");
        // JSON shape.
        let j = lint_json(&r);
        assert!(j.get("diagnostics").is_some());
        assert_eq!(j.get("bound").and_then(Json::as_str), Some("64"));
        let s = j.to_string_compact();
        assert!(s.contains("BVQ-W106"), "{s}");
    }

    #[test]
    fn explain_inlines_lint_diagnostics() {
        let db = db();
        let req = ExecRequest::query("(x1) (P(x1) & exists x2. P(x1))");
        let report = explain(&db, &req, false).unwrap();
        assert!(report.lint.diagnostics.iter().any(|d| d.code == "BVQ-W103"));
        let rendered = run_explain(&db, &req, false).unwrap();
        assert!(rendered.contains("complexity: data"), "{rendered}");
        assert!(rendered.contains("warning[BVQ-W103]"), "{rendered}");
    }

    #[test]
    fn unknown_datalog_output_is_a_typed_error() {
        let d = ExecRequest::datalog("T(x,y) :- E(x,y).", "Zap");
        let err = execute(&db(), &d).unwrap_err();
        assert_eq!(err, RunError::UnknownOutput("Zap".into()));
        assert_eq!(err.code(), "eval_error");
        assert!(err.to_string().contains("`Zap`"));
    }

    #[test]
    fn traced_execute_returns_span_tree() {
        let db = db();
        let mut req = ExecRequest::query("(x1) exists x2. (E(x1,x2) & P(x2))");
        req.trace = true;
        let out = execute(&db, &req).unwrap();
        let trace = out.trace.expect("trace requested");
        assert_eq!(trace.kind, "exists");
        assert!(trace.total_spans() >= 4);
        // Datalog traces carry round spans.
        let mut d = ExecRequest::datalog("T(x,y) :- E(x,y).\nT(x,z) :- T(x,y), E(y,z).", "T");
        d.trace = true;
        let out = execute(&db, &d).unwrap();
        let trace = out.trace.expect("trace requested");
        assert_eq!(trace.kind, "datalog");
        assert!(trace.children.iter().all(|c| c.kind == "round"));
        // ESO sentence traces carry ground/solve phases.
        let mut e = ExecRequest::eso("exists2 S/1. forall x1. (S(x1) -> P(x1))");
        e.trace = true;
        let out = execute(&db, &e).unwrap();
        let trace = out.trace.expect("trace requested");
        assert_eq!(trace.kind, "eso");
        let kinds: Vec<&str> = trace.children.iter().map(|c| c.kind).collect();
        assert_eq!(kinds, ["ground", "solve"]);
        // ESO queries trace one check per candidate tuple.
        let mut e = ExecRequest::eso("exists2 S/1. (S(x1) & forall x2. (S(x2) -> P(x2)))");
        e.trace = true;
        let out = execute(&db, &e).unwrap();
        let trace = out.trace.expect("trace requested");
        assert_eq!(trace.kind, "eso");
        assert!(trace.children.iter().all(|c| c.kind == "check"));
    }

    #[test]
    fn cache_key_covers_semantic_fields_only() {
        let mut a = ExecRequest::query("(x1) P(x1)");
        let mut b = a.clone();
        b.trace = true;
        b.opts.threads = Some(4);
        assert_eq!(a.cache_key(), b.cache_key());
        a.opts.naive = true;
        assert_ne!(a.cache_key(), b.cache_key());
        assert!(a.cache_key().starts_with("eval|"));
        assert!(ExecRequest::eso("exists2 S/1. S(x1)")
            .cache_key()
            .starts_with("eso|"));
        assert!(ExecRequest::datalog("T(x) :- P(x).", "T")
            .cache_key()
            .starts_with("datalog|out=T|"));
    }

    #[test]
    fn explain_reports_plan_without_running() {
        let db = db();
        let req = ExecRequest::query("(x1) exists x2. (E(x1,x2) & P(x2))");
        let report = explain(&db, &req, false).unwrap();
        assert_eq!(report.label, "FO^2");
        assert_eq!(report.backend, "dense");
        assert_eq!(report.bound, "n^2 = 4^2 = 16");
        assert!(report.cache_key.starts_with("eval|"));
        assert!(report.analyzed.is_none());
        // Static plan mirrors the formula: exists → and → atoms.
        assert_eq!(report.plan.kind, "exists");
        assert_eq!(report.plan.children[0].kind, "and");
        assert_eq!(report.plan.children[0].children.len(), 2);
        // Estimated rows are the n^arity bound; no timings.
        assert_eq!(report.plan.rows, 4);
        assert_eq!(report.plan.elapsed_ns, 0);
        let rendered = run_explain(&db, &req, false).unwrap();
        assert!(rendered.contains("backend: dense"));
        assert!(rendered.contains("plan (estimated rows):"));
    }

    #[test]
    fn explain_analyze_measures_the_plan() {
        let db = db();
        let req = ExecRequest::query("(x1) exists x2. (E(x1,x2) & P(x2))");
        let report = explain(&db, &req, true).unwrap();
        let stats = report.analyzed.expect("analyze ran the query");
        assert!(stats.operator_applications > 0);
        // Measured spans replace the static estimate: the root reports
        // real (cylindrical) cardinalities and nonzero wall time.
        assert_eq!(report.plan.kind, "exists");
        assert!(report.plan.rows <= 4, "measured, not the n^2 bound");
        assert!(report.plan.elapsed_ns > 0);
        let rendered = run_explain(&db, &req, true).unwrap();
        assert!(rendered.contains("plan (measured):"));
        assert!(rendered.contains("measured: "));
    }

    #[test]
    fn compile_modes_agree_and_key_cache_only_when_forced() {
        let db = db();
        let text = "(x1) [lfp S(x1). (x1 = 0 | exists x2. (S(x2) & E(x2,x1)))](x1)";
        let auto = ExecRequest::query(text);
        let mut on = auto.clone();
        on.opts.compile = CompileMode::On;
        let mut off = auto.clone();
        off.opts.compile = CompileMode::Off;
        let rows = |req: &ExecRequest| -> Vec<_> {
            let Answer::Rows(r) = execute(&db, req).unwrap().answer else {
                panic!("expected rows")
            };
            r.sorted()
        };
        assert_eq!(rows(&on), rows(&off));
        assert_eq!(rows(&auto), rows(&off));
        // `Auto` keeps the historical key; forcing a mode changes it.
        assert_eq!(auto.cache_key(), ExecRequest::query(text).cache_key());
        assert!(!auto.cache_key().contains("compile="));
        assert!(on.cache_key().contains("compile=on|"));
        assert!(off.cache_key().contains("compile=off|"));
        assert_ne!(on.cache_key(), off.cache_key());
        // Datalog compiled kernels agree with the interpreter too.
        let d = ExecRequest::datalog("T(x,y) :- E(x,y).\nT(x,z) :- T(x,y), E(y,z).", "T");
        let mut d_off = d.clone();
        d_off.opts.compile = CompileMode::Off;
        assert_eq!(rows(&d), rows(&d_off));
    }

    #[test]
    fn execution_records_feedback_on_cached_plans() {
        let db = db();
        let req =
            ExecRequest::query("(x1) [lfp S(x1). (x1 = 0 | exists x2. (S(x2) & E(x2,x1)))](x1)");
        let prepared = prepare_request(&req).unwrap();
        let Prepared::Query(plan) = &prepared else {
            panic!("expected a query plan")
        };
        assert!(plan.feedback.get().is_none());
        execute_prepared(&db, &prepared, &req).unwrap();
        let fb = plan.feedback.get().expect("execution recorded feedback");
        assert!(fb.fixpoint_iterations > 0);
        // Clones share the cell — the plan-LRU's Arc'd values observe it.
        let clone = plan.clone();
        assert_eq!(clone.feedback.get(), Some(fb));
    }

    #[test]
    fn compiled_dispatch_honors_trace_and_deadline() {
        let db = db();
        // Traced requests always interpret, so span trees keep their
        // pinned shape even when the cost model would compile.
        let mut req =
            ExecRequest::query("(x1) [lfp S(x1). (x1 = 0 | exists x2. (S(x2) & E(x2,x1)))](x1)");
        req.opts.compile = CompileMode::On;
        req.trace = true;
        let out = execute(&db, &req).unwrap();
        assert!(out.trace.is_some());
        // A compiled run under an expired deadline aborts cleanly.
        let mut req =
            ExecRequest::query("(x1) [lfp S(x1). (x1 = 0 | exists x2. (S(x2) & E(x2,x1)))](x1)");
        req.opts.compile = CompileMode::On;
        req.opts.deadline = Some(Instant::now());
        let err = execute(&db, &req).unwrap_err();
        assert_eq!(err.code(), "deadline_exceeded");
    }

    #[test]
    fn explain_reports_engine_cost_and_bytecode() {
        let db = db();
        let req = ExecRequest::query("(x1) exists x2. (E(x1,x2) & P(x2))");
        let report = explain(&db, &req, false).unwrap();
        assert!(
            report.engine == "interpreted" || report.engine.starts_with("compiled"),
            "{}",
            report.engine
        );
        assert!(report.cost.iter().any(|l| l.starts_with("cost:")));
        let bc = report.bytecode.as_deref().expect("query lowers");
        assert!(bc.starts_with(";; bytecode"), "{bc}");
        let rendered = run_explain(&db, &req, false).unwrap();
        assert!(rendered.contains("engine: "), "{rendered}");
        assert!(rendered.contains("cost: "), "{rendered}");
        assert!(rendered.contains(";; bytecode"), "{rendered}");
        // Forcing compilation flips the engine row.
        let mut forced = req.clone();
        forced.opts.compile = CompileMode::On;
        let report = explain(&db, &forced, false).unwrap();
        assert!(report.engine.starts_with("compiled ("), "{}", report.engine);
        // Datalog and naive requests label their engines too.
        let d = ExecRequest::datalog("T(x,y) :- E(x,y).", "T");
        assert_eq!(
            explain(&db, &d, false).unwrap().engine,
            "compiled (rule kernels)"
        );
        let mut naive = req.clone();
        naive.opts.naive = true;
        assert_eq!(explain(&db, &naive, false).unwrap().engine, "naive");
    }

    #[test]
    fn referenced_relations_cover_every_kind() {
        let q = prepare_request(&ExecRequest::query("(x1) (E(x1,x1) & exists x2. P(x2))")).unwrap();
        assert_eq!(q.referenced_relations(), ["E", "P"]);
        // Quantified ESO relations are derived, not stored.
        let e = prepare_request(&ExecRequest::eso("exists2 S/1. (S(x1) & P(x1))")).unwrap();
        assert_eq!(e.referenced_relations(), ["P"]);
        // Datalog IDB predicates are excluded; EDB names dedupe.
        let d = prepare_request(&ExecRequest::datalog(
            "T(x,y) :- E(x,y).\nT(x,z) :- T(x,y), E(y,z).",
            "T",
        ))
        .unwrap();
        assert_eq!(d.referenced_relations(), ["E"]);
    }

    #[test]
    fn incr_plans_follow_the_fallback_matrix() {
        use bvq_core::Strategy;
        let plan = |req: &ExecRequest| prepare_request(req).unwrap().incr_plan();
        let d = plan(&ExecRequest::datalog("T(x) :- P(x).", "T"));
        assert_eq!(d.strategy, Strategy::Counting);
        let d = plan(&ExecRequest::datalog(
            "T(x,y) :- E(x,y).\nT(x,z) :- T(x,y), E(y,z).",
            "T",
        ));
        assert_eq!(d.strategy, Strategy::DRed);
        let q = plan(&ExecRequest::query("(x1) [pfp S(x1). ~S(x1)](x1)"));
        assert_eq!(q.strategy, Strategy::Rediff);
        assert!(q.reason.starts_with("pfp"), "{}", q.reason);
        let e = plan(&ExecRequest::eso("exists2 S/1. (S(x1) & P(x1))"));
        assert_eq!(e.strategy, Strategy::Rediff);
    }

    #[test]
    fn explain_reports_maintenance_strategy() {
        let db = db();
        let d = ExecRequest::datalog("T(x,y) :- E(x,y).\nT(x,z) :- T(x,y), E(y,z).", "T");
        let report = explain(&db, &d, false).unwrap();
        assert!(
            report.maintenance.starts_with("dred — "),
            "{}",
            report.maintenance
        );
        let rendered = run_explain(&db, &d, false).unwrap();
        assert!(rendered.contains("maintenance: dred"), "{rendered}");
        let q = ExecRequest::query("(x1) P(x1)");
        let report = explain(&db, &q, false).unwrap();
        assert!(
            report.maintenance.starts_with("rediff — "),
            "{}",
            report.maintenance
        );
    }

    #[test]
    fn forced_backends_agree_and_key_the_cache() {
        let db = db();
        let text = "(x1) [lfp S(x1). (x1 = 0 | exists x2. (S(x2) & E(x2,x1)))](x1)";
        let auto = ExecRequest::query(text);
        let forced = |m: BackendMode| {
            let mut r = auto.clone();
            r.opts.backend = m;
            r
        };
        let rows = |req: &ExecRequest| -> Vec<_> {
            let Answer::Rows(r) = execute(&db, req).unwrap().answer else {
                panic!("expected rows")
            };
            r.sorted()
        };
        let base = rows(&auto);
        for m in [BackendMode::Dense, BackendMode::Sparse, BackendMode::Bdd] {
            assert_eq!(rows(&forced(m)), base, "{m}");
            let key = forced(m).cache_key();
            assert!(key.contains(&format!("backend={m}|")), "{key}");
        }
        // `auto` keeps the historical key.
        assert!(!auto.cache_key().contains("backend="));
        assert_eq!(auto.cache_key(), ExecRequest::query(text).cache_key());
        // Datalog routes through the FP translation under a forced
        // backend and still matches the rule engine.
        let d = ExecRequest::datalog("T(x,y) :- E(x,y).\nT(x,z) :- T(x,y), E(y,z).", "T");
        let mut d_bdd = d.clone();
        d_bdd.opts.backend = BackendMode::Bdd;
        assert_eq!(rows(&d_bdd), rows(&d));
        assert!(d_bdd.cache_key().contains("backend=bdd|"));
        // Unknown outputs stay a typed error on the translated path.
        let mut bad = ExecRequest::datalog("T(x) :- P(x).", "Zap");
        bad.opts.backend = BackendMode::Bdd;
        let err = execute(&db, &bad).unwrap_err();
        assert_eq!(err, RunError::UnknownOutput("Zap".into()));
    }

    #[test]
    fn backend_option_conflicts_are_invalid_options() {
        let db = db();
        let mut naive = ExecRequest::query("(x1) P(x1)");
        naive.opts.naive = true;
        naive.opts.backend = BackendMode::Bdd;
        assert_eq!(execute(&db, &naive).unwrap_err().code(), "invalid_option");
        let mut eso = ExecRequest::eso("exists2 S/1. (S(x1) & P(x1))");
        eso.opts.backend = BackendMode::Dense;
        assert_eq!(execute(&db, &eso).unwrap_err().code(), "invalid_option");
        let mut d = ExecRequest::datalog("T(x) :- P(x).", "T");
        d.opts.naive = true;
        d.opts.backend = BackendMode::Sparse;
        assert_eq!(execute(&db, &d).unwrap_err().code(), "invalid_option");
    }

    #[test]
    fn explain_reports_forced_and_chosen_backends() {
        let db = db();
        let req = ExecRequest::query("(x1) exists x2. (E(x1,x2) & P(x2))");
        let mut bdd = req.clone();
        bdd.opts.backend = BackendMode::Bdd;
        let report = explain(&db, &bdd, false).unwrap();
        assert_eq!(report.backend, "bdd");
        assert_eq!(report.engine, "interpreted", "forced backends interpret");
        assert!(report.cache_key.contains("backend=bdd|"));
        let rendered = run_explain(&db, &bdd, false).unwrap();
        assert!(rendered.contains("backend: bdd"), "{rendered}");
        // `explain analyze` actually runs on the forced backend.
        let report = explain(&db, &bdd, true).unwrap();
        assert!(report.analyzed.is_some());
        // Datalog reports the forced backend too.
        let mut d = ExecRequest::datalog("T(x,y) :- E(x,y).", "T");
        d.opts.backend = BackendMode::Sparse;
        assert_eq!(explain(&db, &d, false).unwrap().backend, "sparse");
        assert_eq!(explain(&db, &d, false).unwrap().engine, "interpreted");
    }

    #[test]
    fn explain_covers_eso_and_datalog_backends() {
        let db = db();
        let e = ExecRequest::eso("exists2 S/1. (S(x1) & forall x1. (S(x1) -> P(x1)))");
        let report = explain(&db, &e, false).unwrap();
        assert_eq!(report.backend, "sat-grounding");
        assert_eq!(report.plan.kind, "eso");
        let d = ExecRequest::datalog("T(x,y) :- E(x,y).\nT(x,z) :- T(x,y), E(y,z).", "T");
        let report = explain(&db, &d, false).unwrap();
        assert_eq!(report.backend, "seminaive");
        assert_eq!(report.label, "DATALOG");
        assert_eq!(report.plan.children.len(), 2);
        assert!(report.plan.children.iter().all(|c| c.kind == "rule"));
        let analyzed = explain(&db, &d, true).unwrap();
        assert_eq!(analyzed.plan.kind, "datalog");
        assert!(analyzed.plan.children.iter().all(|c| c.kind == "round"));
    }
}
