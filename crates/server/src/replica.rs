//! Untrusted-replica fan-out.
//!
//! A coordinator started with replicas (or that received
//! `register_replica` ops) keeps them in a [`ReplicaPool`]. Replicas are
//! **untrusted**: the coordinator never believes a replica's answer —
//! it only believes its own trusted checker (`bvq-cert`), run against
//! its *own* snapshot of the database. The pool therefore only deals in
//! transport: round-robin selection, per-call timeouts, and a
//! three-strikes quarantine for replicas that stop responding. Whether
//! a returned certificate is *valid* is decided entirely by the caller.
//!
//! The exchange itself is one line of the ordinary wire protocol: the
//! coordinator connects, sends a single `eval_certified` request, and
//! reads a single response line. Replicas are plain `bvq serve`
//! processes — there is no separate replica protocol to audit.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Consecutive failures after which a replica is quarantined.
const MAX_FAILURES: u32 = 3;

#[derive(Debug)]
struct Replica {
    addr: String,
    /// Consecutive failures; reset on any success. At [`MAX_FAILURES`]
    /// the replica stops being picked.
    failures: u32,
}

/// A round-robin pool of untrusted replica addresses.
#[derive(Debug, Default)]
pub struct ReplicaPool {
    replicas: Mutex<Vec<Replica>>,
    cursor: AtomicUsize,
}

impl ReplicaPool {
    /// An empty pool (fan-out disabled until a replica registers).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `addr` to the pool (idempotent; re-registering clears any
    /// quarantine, so a restarted replica heals itself by registering
    /// again). Returns the pool size after registration.
    pub fn register(&self, addr: &str) -> usize {
        let mut reps = self.replicas.lock().unwrap();
        match reps.iter_mut().find(|r| r.addr == addr) {
            Some(r) => r.failures = 0,
            None => reps.push(Replica {
                addr: addr.to_string(),
                failures: 0,
            }),
        }
        reps.len()
    }

    /// Picks the next healthy replica address round-robin, or `None`
    /// when every replica is quarantined (or the pool is empty).
    pub fn pick(&self) -> Option<String> {
        let reps = self.replicas.lock().unwrap();
        if reps.is_empty() {
            return None;
        }
        let start = self.cursor.fetch_add(1, Ordering::Relaxed);
        (0..reps.len())
            .map(|i| &reps[(start + i) % reps.len()])
            .find(|r| r.failures < MAX_FAILURES)
            .map(|r| r.addr.clone())
    }

    /// Records a successful exchange with `addr` (clears its strikes).
    pub fn report_success(&self, addr: &str) {
        let mut reps = self.replicas.lock().unwrap();
        if let Some(r) = reps.iter_mut().find(|r| r.addr == addr) {
            r.failures = 0;
        }
    }

    /// Records a failed exchange with `addr`. Three in a row quarantine
    /// the replica until it re-registers or succeeds via another path.
    pub fn report_failure(&self, addr: &str) {
        let mut reps = self.replicas.lock().unwrap();
        if let Some(r) = reps.iter_mut().find(|r| r.addr == addr) {
            r.failures = r.failures.saturating_add(1);
        }
    }

    /// `(total, healthy)` pool occupancy, for the `stats` op.
    pub fn occupancy(&self) -> (usize, usize) {
        let reps = self.replicas.lock().unwrap();
        let healthy = reps.iter().filter(|r| r.failures < MAX_FAILURES).count();
        (reps.len(), healthy)
    }
}

/// Sends one request line to `addr` and reads one response line, all
/// under `timeout` (applied separately to connect, write, and read).
///
/// Returns `Err` on any transport problem — connection refused, timeout,
/// a dropped connection mid-line, or an empty response. Protocol-level
/// errors (`"ok": false`) are *successful* exchanges at this layer; the
/// caller inspects the payload.
pub fn exchange(addr: &str, line: &str, timeout: Duration) -> std::io::Result<String> {
    let sock_addr = addr
        .parse()
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, format!("{e}")))?;
    let stream = TcpStream::connect_timeout(&sock_addr, timeout)?;
    stream.set_write_timeout(Some(timeout))?;
    stream.set_read_timeout(Some(timeout))?;
    let mut writer = stream.try_clone()?;
    writer.write_all(line.as_bytes())?;
    if !line.ends_with('\n') {
        writer.write_all(b"\n")?;
    }
    writer.flush()?;
    let mut reader = BufReader::new(stream);
    let mut response = String::new();
    let n = reader.read_line(&mut response)?;
    if n == 0 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "replica closed the connection without responding",
        ));
    }
    Ok(response)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_cycles_healthy_replicas() {
        let pool = ReplicaPool::new();
        assert_eq!(pool.pick(), None);
        pool.register("a:1");
        pool.register("b:2");
        let picks: Vec<_> = (0..4).filter_map(|_| pool.pick()).collect();
        assert_eq!(picks, ["a:1", "b:2", "a:1", "b:2"]);
    }

    #[test]
    fn register_is_idempotent() {
        let pool = ReplicaPool::new();
        assert_eq!(pool.register("a:1"), 1);
        assert_eq!(pool.register("a:1"), 1);
        assert_eq!(pool.register("b:2"), 2);
    }

    #[test]
    fn three_strikes_quarantines_and_reregistration_heals() {
        let pool = ReplicaPool::new();
        pool.register("a:1");
        for _ in 0..MAX_FAILURES {
            pool.report_failure("a:1");
        }
        assert_eq!(pool.pick(), None);
        assert_eq!(pool.occupancy(), (1, 0));
        pool.register("a:1");
        assert_eq!(pool.pick(), Some("a:1".to_string()));
        assert_eq!(pool.occupancy(), (1, 1));
    }

    #[test]
    fn success_resets_strikes() {
        let pool = ReplicaPool::new();
        pool.register("a:1");
        pool.report_failure("a:1");
        pool.report_failure("a:1");
        pool.report_success("a:1");
        pool.report_failure("a:1");
        assert_eq!(pool.pick(), Some("a:1".to_string()));
    }

    #[test]
    fn quarantined_replica_is_skipped_not_fatal() {
        let pool = ReplicaPool::new();
        pool.register("dead:1");
        pool.register("live:2");
        for _ in 0..MAX_FAILURES {
            pool.report_failure("dead:1");
        }
        for _ in 0..4 {
            assert_eq!(pool.pick(), Some("live:2".to_string()));
        }
    }

    #[test]
    fn exchange_rejects_unparseable_addr() {
        let err = exchange("not an addr", "{}", Duration::from_millis(100)).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
    }
}
