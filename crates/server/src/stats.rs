//! The in-process stats registry: request counters, cache hit/miss
//! counters, queue depth, and per-language latency histograms.
//!
//! Everything is lock-free (`AtomicU64` with relaxed ordering — the
//! numbers are monitoring data, not synchronisation), so recording a
//! sample never contends with the worker pool. Latencies go into
//! power-of-two microsecond buckets; quantiles reported by `snapshot`
//! are bucket upper bounds, which is the usual monitoring trade-off.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::time::Duration;

use crate::json::Json;

/// The query languages tracked by the per-language histograms.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Language {
    /// First-order (`FO^k`).
    Fo,
    /// Least/greatest fixpoint (`FP^k`).
    Fp,
    /// Partial/inflationary fixpoint (`PFP^k`/`IFP^k`).
    Pfp,
    /// Existential second-order (`ESO^k`).
    Eso,
    /// Datalog programs.
    Datalog,
    /// Anything else (control-plane ops, debug ops).
    Other,
}

impl Language {
    const ALL: [Language; 6] = [
        Language::Fo,
        Language::Fp,
        Language::Pfp,
        Language::Eso,
        Language::Datalog,
        Language::Other,
    ];

    fn index(self) -> usize {
        match self {
            Language::Fo => 0,
            Language::Fp => 1,
            Language::Pfp => 2,
            Language::Eso => 3,
            Language::Datalog => 4,
            Language::Other => 5,
        }
    }

    /// The label used in stats output.
    pub fn label(self) -> &'static str {
        match self {
            Language::Fo => "FO",
            Language::Fp => "FP",
            Language::Pfp => "PFP",
            Language::Eso => "ESO",
            Language::Datalog => "DATALOG",
            Language::Other => "OTHER",
        }
    }
}

const BUCKETS: usize = 32;

/// A histogram of latencies in power-of-two microsecond buckets: bucket
/// `i` counts samples in `[2^(i-1), 2^i)` µs (bucket 0: `< 1 µs`).
#[derive(Default)]
struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    total_micros: AtomicU64,
}

impl Histogram {
    fn record(&self, latency: Duration) {
        let micros = latency.as_micros().min(u64::MAX as u128) as u64;
        let idx = (64 - micros.leading_zeros() as usize).min(BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Relaxed);
        self.count.fetch_add(1, Relaxed);
        self.total_micros.fetch_add(micros, Relaxed);
    }

    /// The bucket upper bound (µs) below which `q` of the samples fall.
    fn quantile_upper_micros(&self, q: f64) -> u64 {
        let total = self.count.load(Relaxed);
        if total == 0 {
            return 0;
        }
        let target = ((total as f64) * q).ceil() as u64;
        let mut seen = 0;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Relaxed);
            if seen >= target {
                return if i == 0 { 1 } else { 1u64 << i };
            }
        }
        1u64 << (BUCKETS - 1)
    }

    fn to_json(&self) -> Json {
        let count = self.count.load(Relaxed);
        let total = self.total_micros.load(Relaxed);
        let mean = total.checked_div(count).unwrap_or(0);
        Json::obj([
            ("count", Json::num(count)),
            ("total_micros", Json::num(total)),
            ("mean_micros", Json::num(mean)),
            ("p50_le_micros", Json::num(self.quantile_upper_micros(0.50))),
            ("p95_le_micros", Json::num(self.quantile_upper_micros(0.95))),
            ("p99_le_micros", Json::num(self.quantile_upper_micros(0.99))),
        ])
    }
}

/// The server's live statistics. All counters are monotonic except the
/// `queue_depth`/`inflight` gauges.
#[derive(Default)]
pub struct StatsRegistry {
    /// Requests received (including ones later rejected).
    pub requests: AtomicU64,
    /// Requests answered `ok:true`.
    pub ok: AtomicU64,
    /// Requests answered with a structured error.
    pub errors: AtomicU64,
    /// Plan-cache hits.
    pub plan_hits: AtomicU64,
    /// Plan-cache misses.
    pub plan_misses: AtomicU64,
    /// Result-cache hits.
    pub result_hits: AtomicU64,
    /// Result-cache misses.
    pub result_misses: AtomicU64,
    /// Requests shed with `overloaded` (bounded queue full).
    pub overloaded: AtomicU64,
    /// Requests rejected by admission control (error-level lint, or a
    /// width over `--max-width` with no certified rewrite fitting it).
    pub admission_rejected: AtomicU64,
    /// Requests auto-rewritten at admission: over the `--max-width`
    /// budget as written, swapped for their certified rewrite.
    pub admission_rewritten: AtomicU64,
    /// Requests aborted by their deadline.
    pub deadline_exceeded: AtomicU64,
    /// Compute jobs currently queued (gauge).
    pub queue_depth: AtomicU64,
    /// Compute jobs currently executing on a worker (gauge).
    pub inflight: AtomicU64,
    /// Connections accepted since startup.
    pub connections: AtomicU64,
    /// Mutation batches applied (epoch advances).
    pub mutations: AtomicU64,
    /// Standing-query subscriptions currently registered (gauge).
    pub subscriptions_active: AtomicU64,
    /// Standing-query maintenance passes that pushed a non-empty delta.
    pub sub_updates: AtomicU64,
    /// Maintenance passes that fell back to re-evaluate-and-diff.
    pub sub_fallbacks: AtomicU64,
    /// Certificates produced by local evaluation (`eval_certified` and
    /// replica-serving runs).
    pub cert_emitted: AtomicU64,
    /// Certificates validated by the trusted checker (local emissions
    /// are cross-checked at production; this counts *checker* runs on
    /// replica-returned certificates).
    pub cert_checked: AtomicU64,
    /// Replica certificates the checker rejected — each one is an
    /// answer that was *not* served or cached.
    pub cert_rejected: AtomicU64,
    /// Fan-out attempts that fell back to local evaluation (transport
    /// failure, replica error, or a rejected certificate).
    pub replica_fallback: AtomicU64,
    histograms: [Histogram; 6],
    phases: [Histogram; 2],
}

/// The execution phases tracked by the per-phase histograms: the split
/// of compute time between planning and evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Parsing + classification ([`crate::exec::prepare_request`]);
    /// near-zero on plan-cache hits.
    Prepare,
    /// Evaluation proper ([`crate::exec::execute_prepared`]).
    Execute,
}

impl Phase {
    const ALL: [Phase; 2] = [Phase::Prepare, Phase::Execute];

    fn index(self) -> usize {
        match self {
            Phase::Prepare => 0,
            Phase::Execute => 1,
        }
    }

    /// The label used in stats output.
    pub fn label(self) -> &'static str {
        match self {
            Phase::Prepare => "prepare",
            Phase::Execute => "execute",
        }
    }
}

impl StatsRegistry {
    /// A fresh registry with all counters at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one completed request of the given language.
    pub fn record_latency(&self, lang: Language, latency: Duration) {
        self.histograms[lang.index()].record(latency);
    }

    /// Records time spent in one execution phase of a compute request.
    pub fn record_phase(&self, phase: Phase, latency: Duration) {
        self.phases[phase.index()].record(latency);
    }

    /// Relaxed load of a counter (test/bench convenience).
    pub fn get(&self, counter: &AtomicU64) -> u64 {
        counter.load(Relaxed)
    }

    /// Serialises the whole registry (the `stats` protocol command).
    pub fn to_json(&self, queue_capacity: usize, workers: usize) -> Json {
        let langs: Vec<(String, Json)> = Language::ALL
            .iter()
            .map(|l| (l.label().to_string(), self.histograms[l.index()].to_json()))
            .collect();
        Json::obj([
            ("requests", Json::num(self.requests.load(Relaxed))),
            ("ok", Json::num(self.ok.load(Relaxed))),
            ("errors", Json::num(self.errors.load(Relaxed))),
            ("plan_hits", Json::num(self.plan_hits.load(Relaxed))),
            ("plan_misses", Json::num(self.plan_misses.load(Relaxed))),
            ("result_hits", Json::num(self.result_hits.load(Relaxed))),
            ("result_misses", Json::num(self.result_misses.load(Relaxed))),
            ("overloaded", Json::num(self.overloaded.load(Relaxed))),
            (
                "admission_rejected",
                Json::num(self.admission_rejected.load(Relaxed)),
            ),
            (
                "admission_rewritten",
                Json::num(self.admission_rewritten.load(Relaxed)),
            ),
            (
                "deadline_exceeded",
                Json::num(self.deadline_exceeded.load(Relaxed)),
            ),
            ("queue_depth", Json::num(self.queue_depth.load(Relaxed))),
            ("queue_capacity", Json::num(queue_capacity as u64)),
            ("inflight", Json::num(self.inflight.load(Relaxed))),
            ("workers", Json::num(workers as u64)),
            ("connections", Json::num(self.connections.load(Relaxed))),
            ("mutations", Json::num(self.mutations.load(Relaxed))),
            (
                "subscriptions_active",
                Json::num(self.subscriptions_active.load(Relaxed)),
            ),
            ("sub_updates", Json::num(self.sub_updates.load(Relaxed))),
            ("sub_fallbacks", Json::num(self.sub_fallbacks.load(Relaxed))),
            ("cert_emitted", Json::num(self.cert_emitted.load(Relaxed))),
            ("cert_checked", Json::num(self.cert_checked.load(Relaxed))),
            ("cert_rejected", Json::num(self.cert_rejected.load(Relaxed))),
            (
                "replica_fallback",
                Json::num(self.replica_fallback.load(Relaxed)),
            ),
            ("latency_micros_by_language", Json::Obj(langs)),
            (
                "latency_micros_by_phase",
                Json::Obj(
                    Phase::ALL
                        .iter()
                        .map(|p| (p.label().to_string(), self.phases[p.index()].to_json()))
                        .collect(),
                ),
            ),
        ])
    }
}

/// Bumps a counter by one (relaxed).
pub fn inc(counter: &AtomicU64) {
    counter.fetch_add(1, Relaxed);
}

/// Decrements a gauge by one (relaxed, saturating at zero).
pub fn dec(counter: &AtomicU64) {
    let mut cur = counter.load(Relaxed);
    while cur > 0 {
        match counter.compare_exchange_weak(cur, cur - 1, Relaxed, Relaxed) {
            Ok(_) => return,
            Err(now) => cur = now,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::default();
        for _ in 0..90 {
            h.record(Duration::from_micros(3)); // bucket [2,4)
        }
        for _ in 0..10 {
            h.record(Duration::from_millis(2)); // ~2048 µs
        }
        assert_eq!(h.count.load(Relaxed), 100);
        assert_eq!(h.quantile_upper_micros(0.5), 4);
        assert!(h.quantile_upper_micros(0.99) >= 2048);
        let j = h.to_json();
        assert_eq!(j.get("count").and_then(Json::as_u64), Some(100));
    }

    #[test]
    fn registry_serialises() {
        let reg = StatsRegistry::new();
        inc(&reg.requests);
        inc(&reg.plan_hits);
        reg.record_latency(Language::Fo, Duration::from_micros(10));
        let j = reg.to_json(64, 4);
        assert_eq!(j.get("requests").and_then(Json::as_u64), Some(1));
        assert_eq!(j.get("queue_capacity").and_then(Json::as_u64), Some(64));
        let fo = j
            .get("latency_micros_by_language")
            .and_then(|l| l.get("FO"))
            .unwrap();
        assert_eq!(fo.get("count").and_then(Json::as_u64), Some(1));
    }

    #[test]
    fn phase_histograms_serialise() {
        let reg = StatsRegistry::new();
        reg.record_phase(Phase::Prepare, Duration::from_micros(5));
        reg.record_phase(Phase::Execute, Duration::from_micros(500));
        reg.record_phase(Phase::Execute, Duration::from_micros(700));
        let j = reg.to_json(64, 4);
        let phases = j.get("latency_micros_by_phase").unwrap();
        assert_eq!(
            phases
                .get("prepare")
                .and_then(|p| p.get("count"))
                .and_then(Json::as_u64),
            Some(1)
        );
        assert_eq!(
            phases
                .get("execute")
                .and_then(|p| p.get("count"))
                .and_then(Json::as_u64),
            Some(2)
        );
    }

    #[test]
    fn gauge_dec_saturates() {
        let g = AtomicU64::new(1);
        dec(&g);
        dec(&g);
        assert_eq!(g.load(Relaxed), 0);
    }
}
