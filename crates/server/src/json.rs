//! A minimal JSON value type, parser, and writer.
//!
//! The hermetic build forbids external crates (no `serde`), and the
//! protocol only needs a small, strict JSON subset: objects, arrays,
//! strings with standard escapes (including `\uXXXX` with surrogate
//! pairs), numbers, booleans, and `null`. Numbers are held as `f64`,
//! which is exact for every integer the protocol carries (domain
//! elements are `u32`, counters fit in 2⁵³).

use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number (exact for |n| < 2⁵³).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved when writing.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// An unsigned integer value.
    pub fn num(n: u64) -> Json {
        Json::Num(n as f64)
    }

    /// Looks up a field of an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// Whether the value is `true` (missing/other values count as false).
    pub fn is_true(&self) -> bool {
        matches!(self, Json::Bool(true))
    }

    /// Serialises to a compact single-line string.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        write_value(self, &mut out);
        out
    }

    /// Parses a complete JSON document (method form of [`parse`]).
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        parse(input)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_string_compact())
    }
}

fn write_value(v: &Json, out: &mut String) {
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(true) => out.push_str("true"),
        Json::Bool(false) => out.push_str("false"),
        Json::Num(n) => {
            if n.fract() == 0.0 && n.abs() < 9e15 {
                out.push_str(&format!("{}", *n as i64));
            } else {
                out.push_str(&format!("{n}"));
            }
        }
        Json::Str(s) => write_string(s, out),
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Json::Obj(pairs) => {
            out.push('{');
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(val, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON parse error with a short description and byte offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (at byte {})", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

/// Parses a complete JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = P {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.fail("trailing characters after JSON value"));
    }
    Ok(v)
}

struct P<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> P<'a> {
    fn fail(&self, msg: &str) -> JsonError {
        JsonError {
            message: msg.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, lit: &str) -> Result<(), JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.fail(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.eat("null").map(|_| Json::Null),
            Some(b't') => self.eat("true").map(|_| Json::Bool(true)),
            Some(b'f') => self.eat("false").map(|_| Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.fail("unexpected character")),
            None => Err(self.fail("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.pos += 1; // '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.fail("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.pos += 1; // '{'
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.fail("expected a string key"));
            }
            let key = self.string()?;
            self.skip_ws();
            if self.peek() != Some(b':') {
                return Err(self.fail("expected `:`"));
            }
            self.pos += 1;
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.fail("expected `,` or `}`")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.fail("malformed number"))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.pos += 1; // opening quote
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.fail("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                self.eat("\\u")
                                    .map_err(|_| self.fail("expected low surrogate"))?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.fail("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                                    .ok_or_else(|| self.fail("invalid surrogate pair"))?
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.fail("invalid \\u escape"))?
                            };
                            out.push(c);
                            continue; // hex4 already advanced past the digits
                        }
                        _ => return Err(self.fail("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.fail("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Reads 4 hex digits starting at `self.pos`, advancing past them.
    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.fail("truncated \\u escape"));
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.fail("invalid \\u escape"))?;
        let v = u32::from_str_radix(text, 16).map_err(|_| self.fail("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_basics() {
        let v = parse(r#"{"op":"eval","k":2,"ok":true,"rows":[[0,1],[2,3]],"x":null}"#).unwrap();
        assert_eq!(v.get("op").and_then(Json::as_str), Some("eval"));
        assert_eq!(v.get("k").and_then(Json::as_u64), Some(2));
        assert!(v.get("ok").unwrap().is_true());
        assert_eq!(v.get("rows").and_then(Json::as_arr).unwrap().len(), 2);
        assert_eq!(v.get("x"), Some(&Json::Null));
        let text = v.to_string_compact();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn string_escapes() {
        let v = parse(r#""a\"b\\c\ndAé""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndAé"));
        // Writer escapes what it must; reparse agrees.
        let s = Json::str("line1\nline2\t\"q\" \\ \u{1}");
        assert_eq!(parse(&s.to_string_compact()).unwrap(), s);
    }

    #[test]
    fn surrogate_pairs() {
        let v = parse(r#""😀""#).unwrap();
        assert_eq!(v.as_str(), Some("😀"));
        assert!(parse(r#""\ud83d""#).is_err());
    }

    #[test]
    fn numbers() {
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(parse("-1.5").unwrap(), Json::Num(-1.5));
        assert_eq!(parse("1e3").unwrap(), Json::Num(1000.0));
        assert_eq!(parse("-1.5").unwrap().as_u64(), None);
        assert_eq!(Json::num(123).to_string_compact(), "123");
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "nul",
            "01x",
            "\"abc",
            "{\"a\" 1}",
            "1 2",
            "{'a':1}",
        ] {
            assert!(parse(bad).is_err(), "should reject `{bad}`");
        }
    }

    #[test]
    fn nested_and_unicode_passthrough() {
        let v = parse(r#"{"a":[{"b":"héllo"}]}"#).unwrap();
        let b = v.get("a").unwrap().as_arr().unwrap()[0]
            .get("b")
            .unwrap()
            .as_str()
            .unwrap();
        assert_eq!(b, "héllo");
    }
}
