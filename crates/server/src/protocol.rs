//! The wire protocol: line-delimited JSON requests and responses.
//!
//! Every request is one JSON object on one line with an `"op"` field and
//! an optional `"id"` echoed back verbatim. Responses carry `"ok":true`
//! plus op-specific fields, or `"ok":false` with a structured
//! `{"code","message"}` error — never a bare string, so clients (and the
//! integration tests) branch on `code`, not on message text.
//!
//! ```text
//! request   := { "op": <op>, "id"?: <any>, ...op fields }
//! op        := "ping" | "list_dbs" | "load_db" | "stats" | "shutdown"
//!            | "eval" | "eso" | "datalog" | "explain" | "lint"
//!            | "eval_certified" | "register_replica"
//!            | "insert" | "delete" | "batch"
//!            | "subscribe" | "unsubscribe" | "subscriptions"
//!            | "debug_sleep"
//! response  := { "id": <echo>, "ok": true, ... }
//!            | { "id": <echo>, "ok": false,
//!                "error": { "code": <code>, "message": <string> } }
//! stream    := header { ..., "stream": true, "count": N }
//!              then N lines { "row": [e, ...] }
//!              then { "done": true, "count": N }
//! delta     := { "sub": <id>, "epoch": <E>,
//!                "add": [[e, ...], ...], "del": [[e, ...], ...] }
//! ```
//!
//! **Mutations & subscriptions (v2).** `insert`/`delete` mutate one
//! tuple of a named database; `batch` applies a list of `"muts"`
//! atomically (each `{"rel": R, "tuple": [...], "delete"?: bool}`).
//! Every mutation batch advances the database's *epoch*; in-flight
//! queries keep reading the snapshot they pinned at admission.
//! `subscribe` registers a standing `eval` or `datalog` query: the ack
//! carries the subscription id, the chosen maintenance strategy
//! (`counting`/`dred`/`rediff`), and the initial answer, and every
//! later mutation that changes the answer pushes one unsolicited
//! `delta` frame (above) on the subscribing connection. `unsubscribe`
//! drops a subscription; `subscriptions` lists them with maintenance
//! statistics.
//!
//! **Certified evaluation & replicas (v3).** `eval_certified` evaluates
//! like `eval`/`datalog`/`eso` (pick with `"target"`, default `eval`)
//! but additionally returns `"certificate"`: a portable `bvq-cert`
//! text certificate for the answer, and `"certified": true`. Requests
//! outside the certifiable fragment fail with `not_certifiable`. A
//! server started with `--replica-of ADDR` registers itself at the
//! coordinator with `register_replica`; the coordinator then fans
//! eligible compute requests out to registered replicas as
//! `eval_certified` ops and **validates every returned certificate
//! with its own trusted checker** against its own epoch snapshot
//! before caching or answering — a lying replica is rejected
//! (`cert_rejected` in stats) and the request falls back to local
//! evaluation.
//!
//! **Versioning & compatibility.** `ping` reports `"v"`:
//! [`PROTOCOL_VERSION`] and a `"capabilities"` object listing the
//! supported [`OPS`] and [`FEATURES`], so clients feature-detect instead
//! of guessing. The compatibility rule is: *unknown fields in a request
//! are ignored* (a `{"op":"ping","shiny":1}` is a valid ping), so old
//! servers accept requests from newer clients; unknown **ops** are
//! rejected with `unknown_op`, whose message lists the supported set.
//!
//! Compute ops accept `"trace": true` to attach a span tree to the
//! response; traced requests bypass the result cache (the spans must be
//! measured, not replayed), so `trace` implies `no_cache`.
//!
//! Error codes: `bad_request`, `unknown_op`, `unknown_db`, `parse_error`,
//! `invalid_option`, `eval_error`, `schema_error`, `admission_rejected`,
//! `lint_error`, `deadline_exceeded`, `overloaded`, `shutting_down`,
//! `db_error`, `mutation_error`, `unknown_sub`, `internal`.

use bvq_ivm::Mutation;
use bvq_relation::BackendMode;

use crate::json::Json;

/// The protocol version reported by `ping`. Version 2 added mutations,
/// epochs, and standing-query subscriptions; version 3 added certified
/// evaluation (`eval_certified`) and replica registration
/// (`register_replica`).
pub const PROTOCOL_VERSION: u64 = 3;

/// Every op the server understands, as reported in `ping`'s
/// capabilities. (`debug_sleep` is excluded: it only exists when the
/// server runs with debug ops enabled.)
pub const OPS: &[&str] = &[
    "ping",
    "list_dbs",
    "load_db",
    "stats",
    "shutdown",
    "eval",
    "eso",
    "datalog",
    "explain",
    "lint",
    "eval_certified",
    "register_replica",
    "insert",
    "delete",
    "batch",
    "subscribe",
    "unsubscribe",
    "subscriptions",
];

/// Optional features clients can detect from `ping`.
pub const FEATURES: &[&str] = &[
    "trace",
    "stream",
    "explain",
    "result_cache",
    "lint",
    "admission",
    "mutations",
    "subscriptions",
    "certificates",
    "replicas",
];

/// A parsed request: the echoed id plus the operation.
#[derive(Clone, Debug)]
pub struct Request {
    /// The request id, echoed back in the response (`Null` if absent).
    pub id: Json,
    /// The operation to perform.
    pub op: Op,
}

/// The operations the server understands. Control-plane ops run inline
/// on the connection thread; compute ops go through the bounded queue.
#[derive(Clone, Debug)]
pub enum Op {
    /// Liveness probe; reports version and capabilities.
    Ping,
    /// List loaded databases.
    ListDbs,
    /// Load (or replace) a named database from db-text.
    LoadDb {
        /// Name the database will be addressed by.
        name: String,
        /// The database in db-text format.
        text: String,
    },
    /// Snapshot the stats registry.
    Stats,
    /// Graceful shutdown: drain in-flight work, then stop.
    Shutdown,
    /// Mutate a named database: one atomic batch of tuple
    /// inserts/deletes (the `insert`, `delete` and `batch` ops all
    /// lower to this). Advances the epoch and propagates deltas to
    /// standing queries.
    Mutate {
        /// Target database.
        db: String,
        /// The batch (a singleton for `insert`/`delete`).
        muts: Vec<Mutation>,
    },
    /// Register a standing query (the `subscribe` op). The ack carries
    /// the initial answer; later mutations push delta frames.
    Subscribe {
        /// Target database.
        db: String,
        /// The subscribed request (`Eval` or `Datalog` kinds only).
        inner: Box<ComputeKind>,
    },
    /// Drop a subscription by id (the `unsubscribe` op).
    Unsubscribe {
        /// The id from the `subscribe` ack.
        sub: u64,
    },
    /// List active subscriptions with maintenance statistics.
    Subscriptions,
    /// Register an untrusted replica (the `register_replica` op): the
    /// coordinator adds `addr` to its fan-out pool. Certificates are
    /// what make this safe — nothing a replica returns is trusted until
    /// the coordinator's own checker validates it.
    RegisterReplica {
        /// The replica's listening address (`host:port`).
        addr: String,
    },
    /// A compute request (queued, runs on a worker).
    Compute(Compute),
}

/// A compute request: what to run, against which database, under which
/// deadline.
#[derive(Clone, Debug)]
pub struct Compute {
    /// Name of the target database (empty for `debug_sleep`).
    pub db: String,
    /// The work itself.
    pub kind: ComputeKind,
    /// Per-request deadline in milliseconds (overrides the server
    /// default); measured from enqueue, so queue wait counts.
    pub deadline_ms: Option<u64>,
    /// Stream the answer tuple-by-tuple instead of one response object.
    pub stream: bool,
    /// Bypass the result cache (still records a miss). Implied by
    /// `trace` — cached results carry no measured spans.
    pub no_cache: bool,
    /// Attach the evaluator's span tree to the response.
    pub trace: bool,
    /// Return a validated `bvq-cert` certificate with the answer (the
    /// `eval_certified` op). Not part of the cache key — a certified
    /// answer equals the uncertified one — but a cache hit only counts
    /// if the cached entry actually carries a certificate.
    pub certificate: bool,
}

/// The kinds of compute work.
#[derive(Clone, Debug)]
pub enum ComputeKind {
    /// An FO/FP/PFP query (the `eval` op).
    Eval {
        /// Query text.
        query: String,
        /// Variable bound override.
        k: Option<usize>,
        /// Use the naive evaluator (FO only).
        naive: bool,
        /// Width-minimize first (FO only).
        minimize: bool,
        /// Evaluator thread count.
        threads: Option<usize>,
        /// Cylinder backend (the `"backend"` field): cost-based when
        /// absent, else forced to `dense`/`sparse`/`bdd`.
        backend: BackendMode,
    },
    /// An ESO sentence/query (the `eso` op).
    Eso {
        /// ESO text.
        query: String,
        /// Variable bound override.
        k: Option<usize>,
    },
    /// A Datalog program (the `datalog` op).
    Datalog {
        /// Program text.
        program: String,
        /// Output predicate to return.
        output: String,
        /// Use naive instead of semi-naive evaluation.
        naive: bool,
        /// Cylinder backend (the `"backend"` field): cost-based when
        /// absent, else forced — routed through the FP translation.
        backend: BackendMode,
    },
    /// Explain a request's plan (the `explain` op): width analysis,
    /// backend choice, `n^k` bound, cache key, and a plan tree — static
    /// by default, measured when `analyze` is set.
    Explain {
        /// The request being explained (`Eval`, `Eso` or `Datalog`).
        inner: Box<ComputeKind>,
        /// Execute (with tracing forced on) and report measured spans.
        analyze: bool,
    },
    /// Statically lint a request (the `lint` op): diagnostics, fragment
    /// classification and Tables 1–3 complexity cells, with **zero
    /// evaluation** — only the database schema and domain size are read.
    Lint {
        /// The request being linted (`Eval`, `Eso` or `Datalog`).
        inner: Box<ComputeKind>,
        /// Flag queries whose `n^k` bound exceeds this many tuples.
        budget: Option<u64>,
    },
    /// Occupy a worker for `millis` ms (`debug_sleep`; only when the
    /// server runs with `debug_ops` — used by backpressure tests).
    Sleep {
        /// How long to hold the worker.
        millis: u64,
    },
}

impl ComputeKind {
    /// The plan/result-cache key for this request: every plan-affecting
    /// input, concatenated. Two requests with equal keys have equal
    /// answers on databases with equal fingerprints. `threads` and
    /// `trace` never affect answers, so they are not in the key.
    pub fn cache_key(&self) -> String {
        // The backend only appears when forced, so default-`auto` keys
        // stay byte-identical to what older clients produced.
        let backend = |mode: &BackendMode| match mode.forced() {
            Some(kind) => format!("backend={kind}|"),
            None => String::new(),
        };
        match self {
            ComputeKind::Eval {
                query,
                k,
                naive,
                minimize,
                backend: b,
                ..
            } => format!(
                "eval|k={k:?}|naive={naive}|min={minimize}|{}{query}",
                backend(b)
            ),
            ComputeKind::Eso { query, k } => format!("eso|k={k:?}|{query}"),
            ComputeKind::Datalog {
                program,
                output,
                naive,
                backend: b,
            } => format!("datalog|out={output}|naive={naive}|{}{program}", backend(b)),
            ComputeKind::Explain { inner, analyze } => {
                format!("explain|analyze={analyze}|{}", inner.cache_key())
            }
            ComputeKind::Lint { inner, budget } => {
                format!("lint|budget={budget:?}|{}", inner.cache_key())
            }
            ComputeKind::Sleep { millis } => format!("sleep|{millis}"),
        }
    }
}

/// Renders the one-line `eval_certified` request a coordinator sends to
/// a replica when fanning out an eligible compute request, or `None`
/// when the kind is not fanned out: ESO answers are textual reports
/// with no row/boolean claim to check, and explain/lint/sleep are not
/// certifiable executions at all.
pub fn certified_wire_line(db: &str, kind: &ComputeKind) -> Option<String> {
    let mut fields: Vec<(String, Json)> = vec![
        ("op".into(), Json::str("eval_certified")),
        ("db".into(), Json::Str(db.to_string())),
    ];
    match kind {
        ComputeKind::Eval {
            query,
            k,
            naive,
            minimize,
            threads: _,
            backend,
        } => {
            fields.push(("target".into(), Json::str("eval")));
            fields.push(("query".into(), Json::Str(query.clone())));
            if let Some(k) = k {
                fields.push(("k".into(), Json::num(*k as u64)));
            }
            if *naive {
                fields.push(("naive".into(), Json::Bool(true)));
            }
            if *minimize {
                fields.push(("minimize".into(), Json::Bool(true)));
            }
            if let Some(forced) = backend.forced() {
                fields.push(("backend".into(), Json::Str(forced.to_string())));
            }
        }
        ComputeKind::Datalog {
            program,
            output,
            naive,
            backend,
        } => {
            fields.push(("target".into(), Json::str("datalog")));
            fields.push(("program".into(), Json::Str(program.clone())));
            fields.push(("output".into(), Json::Str(output.clone())));
            if *naive {
                fields.push(("naive".into(), Json::Bool(true)));
            }
            if let Some(forced) = backend.forced() {
                fields.push(("backend".into(), Json::Str(forced.to_string())));
            }
        }
        ComputeKind::Eso { .. }
        | ComputeKind::Explain { .. }
        | ComputeKind::Lint { .. }
        | ComputeKind::Sleep { .. } => return None,
    }
    Some(Json::Obj(fields).to_string_compact())
}

/// A protocol-level error: the `code` a client branches on plus a
/// human-readable message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProtoError {
    /// Stable error code (see module docs for the full set).
    pub code: String,
    /// Diagnostic message.
    pub message: String,
}

impl ProtoError {
    /// Builds an error from a code and message.
    pub fn new(code: &str, message: impl Into<String>) -> Self {
        ProtoError {
            code: code.into(),
            message: message.into(),
        }
    }
}

/// Parses one request line. On failure returns the echoed id (if the
/// line parsed as JSON at all) and the error to report — the connection
/// stays open either way.
///
/// Unknown fields are ignored by construction (each op reads only the
/// fields it knows), which is the protocol's forward-compatibility
/// rule; see the module docs.
pub fn parse_request(line: &str) -> Result<Request, (Json, ProtoError)> {
    let json = Json::parse(line)
        .map_err(|e| (Json::Null, ProtoError::new("bad_request", e.to_string())))?;
    let id = json.get("id").cloned().unwrap_or(Json::Null);
    let op = match json.get("op").and_then(Json::as_str) {
        Some(op) => op,
        None => {
            return Err((
                id,
                ProtoError::new("bad_request", "missing string field `op`"),
            ))
        }
    };
    let need_str = |field: &str| -> Result<String, (Json, ProtoError)> {
        json.get(field)
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| {
                (
                    id.clone(),
                    ProtoError::new(
                        "bad_request",
                        format!("`{op}` needs string field `{field}`"),
                    ),
                )
            })
    };
    let opt_u64 = |field: &str| json.get(field).and_then(Json::as_u64);
    let flag = |field: &str| json.get(field).map(Json::is_true).unwrap_or(false);
    // `"backend"` is optional; a present-but-unknown value is a
    // structured `invalid_option`, not a silent fall-back to `auto`.
    let backend = || -> Result<BackendMode, (Json, ProtoError)> {
        match json.get("backend").and_then(Json::as_str) {
            None => Ok(BackendMode::Auto),
            Some(s) => BackendMode::parse(s).ok_or_else(|| {
                (
                    id.clone(),
                    ProtoError::new(
                        "invalid_option",
                        format!("`backend` must be auto|dense|sparse|bdd, got `{s}`"),
                    ),
                )
            }),
        }
    };

    let eval_kind = || -> Result<ComputeKind, (Json, ProtoError)> {
        Ok(ComputeKind::Eval {
            query: need_str("query")?,
            k: opt_u64("k").map(|v| v as usize),
            naive: flag("naive"),
            minimize: flag("minimize"),
            threads: opt_u64("threads").map(|v| v as usize),
            backend: backend()?,
        })
    };
    let eso_kind = || -> Result<ComputeKind, (Json, ProtoError)> {
        Ok(ComputeKind::Eso {
            query: need_str("query")?,
            k: opt_u64("k").map(|v| v as usize),
        })
    };
    let datalog_kind = || -> Result<ComputeKind, (Json, ProtoError)> {
        Ok(ComputeKind::Datalog {
            program: need_str("program")?,
            output: need_str("output")?,
            naive: flag("naive"),
            backend: backend()?,
        })
    };
    let compute = |kind: ComputeKind, stream: bool, no_cache: bool, trace: bool| {
        Op::Compute(Compute {
            db: String::new(), // filled below
            kind,
            deadline_ms: opt_u64("deadline_ms"),
            stream,
            no_cache,
            trace,
            certificate: false,
        })
    };

    // One wire mutation: `{"rel": R, "tuple": [e, ...], "delete"?: b}`.
    // `insert`/`delete` read the fields off the request itself; `batch`
    // reads a list of such objects from `muts`.
    let mutation = |obj: &Json, force_delete: bool| -> Result<Mutation, (Json, ProtoError)> {
        let bad = |msg: &str| {
            (
                id.clone(),
                ProtoError::new("bad_request", format!("`{op}`: {msg}")),
            )
        };
        let rel = obj
            .get("rel")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("each mutation needs string field `rel`"))?
            .to_string();
        let tuple = obj
            .get("tuple")
            .and_then(Json::as_arr)
            .ok_or_else(|| bad("each mutation needs array field `tuple`"))?
            .iter()
            .map(|e| e.as_u64().map(|v| v as u32))
            .collect::<Option<Vec<u32>>>()
            .ok_or_else(|| bad("`tuple` elements must be non-negative integers"))?;
        let delete = force_delete || obj.get("delete").map(Json::is_true).unwrap_or(false);
        Ok(if delete {
            Mutation::Delete { rel, tuple }
        } else {
            Mutation::Insert { rel, tuple }
        })
    };

    let trace = flag("trace");
    let parsed = match op {
        "ping" => Op::Ping,
        "list_dbs" => Op::ListDbs,
        "stats" => Op::Stats,
        "shutdown" => Op::Shutdown,
        "load_db" => Op::LoadDb {
            name: need_str("name")?,
            text: need_str("text")?,
        },
        "insert" | "delete" => Op::Mutate {
            db: need_str("db")?,
            muts: vec![mutation(&json, op == "delete")?],
        },
        "batch" => {
            let muts = json
                .get("muts")
                .and_then(Json::as_arr)
                .ok_or_else(|| {
                    (
                        id.clone(),
                        ProtoError::new("bad_request", "`batch` needs array field `muts`"),
                    )
                })?
                .iter()
                .map(|m| mutation(m, false))
                .collect::<Result<Vec<_>, _>>()?;
            Op::Mutate {
                db: need_str("db")?,
                muts,
            }
        }
        "subscribe" => {
            let inner = match json.get("target").and_then(Json::as_str).unwrap_or("eval") {
                "eval" => eval_kind()?,
                "datalog" => datalog_kind()?,
                other => {
                    return Err((
                        id,
                        ProtoError::new(
                            "bad_request",
                            format!("`subscribe` target must be eval|datalog, got `{other}`"),
                        ),
                    ))
                }
            };
            Op::Subscribe {
                db: need_str("db")?,
                inner: Box::new(inner),
            }
        }
        "unsubscribe" => Op::Unsubscribe {
            sub: opt_u64("sub").ok_or_else(|| {
                (
                    id.clone(),
                    ProtoError::new("bad_request", "`unsubscribe` needs integer field `sub`"),
                )
            })?,
        },
        "subscriptions" => Op::Subscriptions,
        "register_replica" => Op::RegisterReplica {
            addr: need_str("addr")?,
        },
        "eval_certified" => {
            let inner = match json.get("target").and_then(Json::as_str).unwrap_or("eval") {
                "eval" => eval_kind()?,
                "eso" => eso_kind()?,
                "datalog" => datalog_kind()?,
                other => {
                    return Err((
                        id,
                        ProtoError::new(
                            "bad_request",
                            format!(
                                "`eval_certified` target must be eval|eso|datalog, got `{other}`"
                            ),
                        ),
                    ))
                }
            };
            // Certified requests never trace (the certificate is the
            // evidence) and may stream rows like a plain eval.
            let mut c = match compute(inner, flag("stream"), flag("no_cache"), false) {
                Op::Compute(c) => c,
                _ => unreachable!(),
            };
            c.certificate = true;
            Op::Compute(c)
        }
        "eval" => compute(
            eval_kind()?,
            flag("stream"),
            flag("no_cache") || trace,
            trace,
        ),
        "eso" => compute(eso_kind()?, false, flag("no_cache") || trace, trace),
        "datalog" => compute(
            datalog_kind()?,
            flag("stream"),
            flag("no_cache") || trace,
            trace,
        ),
        "explain" => {
            let inner = match json.get("target").and_then(Json::as_str).unwrap_or("eval") {
                "eval" => eval_kind()?,
                "eso" => eso_kind()?,
                "datalog" => datalog_kind()?,
                other => {
                    return Err((
                        id,
                        ProtoError::new(
                            "bad_request",
                            format!("`explain` target must be eval|eso|datalog, got `{other}`"),
                        ),
                    ))
                }
            };
            // Explain reports are never served from the result cache:
            // static ones are cheap, analyzed ones must be measured.
            compute(
                ComputeKind::Explain {
                    inner: Box::new(inner),
                    analyze: flag("analyze"),
                },
                false,
                true,
                false,
            )
        }
        "lint" => {
            let inner = match json.get("target").and_then(Json::as_str).unwrap_or("eval") {
                "eval" => eval_kind()?,
                "eso" => eso_kind()?,
                "datalog" => datalog_kind()?,
                other => {
                    return Err((
                        id,
                        ProtoError::new(
                            "bad_request",
                            format!("`lint` target must be eval|eso|datalog, got `{other}`"),
                        ),
                    ))
                }
            };
            // Lint reports are cheap and never evaluate, so they bypass
            // the result cache entirely.
            compute(
                ComputeKind::Lint {
                    inner: Box::new(inner),
                    budget: opt_u64("budget"),
                },
                false,
                true,
                false,
            )
        }
        "debug_sleep" => compute(
            ComputeKind::Sleep {
                millis: opt_u64("millis").unwrap_or(100),
            },
            false,
            true,
            false,
        ),
        other => {
            return Err((
                id,
                ProtoError::new(
                    "unknown_op",
                    format!("unknown op `{other}`; supported ops: {}", OPS.join(", ")),
                ),
            ))
        }
    };
    let parsed = match parsed {
        Op::Compute(mut c) => {
            if !matches!(c.kind, ComputeKind::Sleep { .. }) {
                c.db = need_str("db")?;
            }
            Op::Compute(c)
        }
        other => other,
    };
    Ok(Request { id, op: parsed })
}

/// Builds an `ok:true` response with the given extra fields.
pub fn ok_response(id: &Json, fields: Vec<(String, Json)>) -> Json {
    let mut obj = vec![
        ("id".to_string(), id.clone()),
        ("ok".to_string(), Json::Bool(true)),
    ];
    obj.extend(fields);
    Json::Obj(obj)
}

/// Builds an `ok:false` response carrying a structured error.
pub fn err_response(id: &Json, err: &ProtoError) -> Json {
    Json::Obj(vec![
        ("id".to_string(), id.clone()),
        ("ok".to_string(), Json::Bool(false)),
        (
            "error".to_string(),
            Json::obj([
                ("code", Json::Str(err.code.clone())),
                ("message", Json::Str(err.message.clone())),
            ]),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_eval_request() {
        let req = parse_request(
            r#"{"op":"eval","id":7,"db":"g","query":"(x1) E(x1,x1)","k":3,"stream":true}"#,
        )
        .unwrap();
        assert_eq!(req.id, Json::Num(7.0));
        match req.op {
            Op::Compute(c) => {
                assert_eq!(c.db, "g");
                assert!(c.stream);
                assert!(!c.trace);
                match c.kind {
                    ComputeKind::Eval { query, k, .. } => {
                        assert_eq!(query, "(x1) E(x1,x1)");
                        assert_eq!(k, Some(3));
                    }
                    other => panic!("wrong kind: {other:?}"),
                }
            }
            other => panic!("wrong op: {other:?}"),
        }
    }

    #[test]
    fn trace_flag_implies_no_cache() {
        let req = parse_request(r#"{"op":"eval","db":"g","query":"(x1) E(x1,x1)","trace":true}"#)
            .unwrap();
        let Op::Compute(c) = req.op else {
            panic!("wrong op")
        };
        assert!(c.trace);
        assert!(c.no_cache, "traced requests must bypass the result cache");
        let req = parse_request(
            r#"{"op":"datalog","db":"g","program":"T(x) :- P(x).","output":"T","trace":true}"#,
        )
        .unwrap();
        let Op::Compute(c) = req.op else {
            panic!("wrong op")
        };
        assert!(c.trace && c.no_cache);
    }

    #[test]
    fn parses_explain_requests() {
        let req =
            parse_request(r#"{"op":"explain","db":"g","query":"(x1) E(x1,x1)","analyze":true}"#)
                .unwrap();
        let Op::Compute(c) = req.op else {
            panic!("wrong op")
        };
        assert!(c.no_cache);
        let ComputeKind::Explain { inner, analyze } = c.kind else {
            panic!("wrong kind")
        };
        assert!(analyze);
        assert!(matches!(*inner, ComputeKind::Eval { .. }));
        let req = parse_request(
            r#"{"op":"explain","db":"g","target":"datalog","program":"T(x) :- P(x).","output":"T"}"#,
        )
        .unwrap();
        let Op::Compute(c) = req.op else {
            panic!("wrong op")
        };
        let ComputeKind::Explain { inner, analyze } = c.kind else {
            panic!("wrong kind")
        };
        assert!(!analyze);
        assert!(matches!(*inner, ComputeKind::Datalog { .. }));
        let (_, err) =
            parse_request(r#"{"op":"explain","db":"g","target":"warp","query":"q"}"#).unwrap_err();
        assert_eq!(err.code, "bad_request");
    }

    #[test]
    fn parses_lint_requests() {
        let req =
            parse_request(r#"{"op":"lint","db":"g","query":"(x1) P(x1)","budget":1000}"#).unwrap();
        let Op::Compute(c) = req.op else {
            panic!("wrong op")
        };
        assert!(c.no_cache, "lint reports are never cached");
        assert!(!c.trace && !c.stream);
        let ComputeKind::Lint { inner, budget } = c.kind else {
            panic!("wrong kind")
        };
        assert_eq!(budget, Some(1000));
        assert!(matches!(*inner, ComputeKind::Eval { .. }));
        let req = parse_request(
            r#"{"op":"lint","db":"g","target":"datalog","program":"T(x) :- P(x).","output":"T"}"#,
        )
        .unwrap();
        let Op::Compute(c) = req.op else {
            panic!("wrong op")
        };
        let ComputeKind::Lint { inner, budget } = c.kind else {
            panic!("wrong kind")
        };
        assert_eq!(budget, None);
        assert!(matches!(*inner, ComputeKind::Datalog { .. }));
        let (_, err) =
            parse_request(r#"{"op":"lint","db":"g","target":"warp","query":"q"}"#).unwrap_err();
        assert_eq!(err.code, "bad_request");
    }

    #[test]
    fn parses_mutation_requests() {
        let req = parse_request(r#"{"op":"insert","db":"g","rel":"E","tuple":[0,4]}"#).unwrap();
        let Op::Mutate { db, muts } = req.op else {
            panic!("wrong op")
        };
        assert_eq!(db, "g");
        assert_eq!(
            muts,
            vec![Mutation::Insert {
                rel: "E".into(),
                tuple: vec![0, 4]
            }]
        );
        let req = parse_request(r#"{"op":"delete","db":"g","rel":"E","tuple":[0,4]}"#).unwrap();
        let Op::Mutate { muts, .. } = req.op else {
            panic!("wrong op")
        };
        assert!(matches!(muts[0], Mutation::Delete { .. }));
        let req = parse_request(
            r#"{"op":"batch","db":"g","muts":[{"rel":"E","tuple":[0,4]},{"rel":"E","tuple":[1,2],"delete":true}]}"#,
        )
        .unwrap();
        let Op::Mutate { muts, .. } = req.op else {
            panic!("wrong op")
        };
        assert_eq!(muts.len(), 2);
        assert!(matches!(muts[0], Mutation::Insert { .. }));
        assert!(matches!(muts[1], Mutation::Delete { .. }));
        // Malformed tuples are structured bad_request errors.
        let (_, err) =
            parse_request(r#"{"op":"insert","db":"g","rel":"E","tuple":[0,-1]}"#).unwrap_err();
        assert_eq!(err.code, "bad_request");
        let (_, err) = parse_request(r#"{"op":"insert","db":"g","rel":"E"}"#).unwrap_err();
        assert_eq!(err.code, "bad_request");
        let (_, err) = parse_request(r#"{"op":"batch","db":"g"}"#).unwrap_err();
        assert_eq!(err.code, "bad_request");
    }

    #[test]
    fn parses_subscription_requests() {
        let req = parse_request(
            r#"{"op":"subscribe","db":"g","target":"datalog","program":"T(x) :- P(x).","output":"T"}"#,
        )
        .unwrap();
        let Op::Subscribe { db, inner } = req.op else {
            panic!("wrong op")
        };
        assert_eq!(db, "g");
        assert!(matches!(*inner, ComputeKind::Datalog { .. }));
        // `eval` is the default target.
        let req = parse_request(r#"{"op":"subscribe","db":"g","query":"(x1) P(x1)"}"#).unwrap();
        let Op::Subscribe { inner, .. } = req.op else {
            panic!("wrong op")
        };
        assert!(matches!(*inner, ComputeKind::Eval { .. }));
        // ESO has no standing-query semantics on the wire.
        let (_, err) =
            parse_request(r#"{"op":"subscribe","db":"g","target":"eso","query":"q"}"#).unwrap_err();
        assert_eq!(err.code, "bad_request");
        let req = parse_request(r#"{"op":"unsubscribe","sub":3}"#).unwrap();
        assert!(matches!(req.op, Op::Unsubscribe { sub: 3 }));
        let (_, err) = parse_request(r#"{"op":"unsubscribe"}"#).unwrap_err();
        assert_eq!(err.code, "bad_request");
        let req = parse_request(r#"{"op":"subscriptions"}"#).unwrap();
        assert!(matches!(req.op, Op::Subscriptions));
    }

    #[test]
    fn parses_certified_and_replica_requests() {
        let req =
            parse_request(r#"{"op":"eval_certified","db":"g","query":"(x1) E(x1,x1)"}"#).unwrap();
        let Op::Compute(c) = req.op else {
            panic!("wrong op")
        };
        assert!(c.certificate);
        assert!(!c.trace, "certified requests never trace");
        assert!(matches!(c.kind, ComputeKind::Eval { .. }));
        let req = parse_request(
            r#"{"op":"eval_certified","db":"g","target":"datalog","program":"T(x) :- P(x).","output":"T"}"#,
        )
        .unwrap();
        let Op::Compute(c) = req.op else {
            panic!("wrong op")
        };
        assert!(c.certificate);
        assert!(matches!(c.kind, ComputeKind::Datalog { .. }));
        let (_, err) =
            parse_request(r#"{"op":"eval_certified","db":"g","target":"warp","query":"q"}"#)
                .unwrap_err();
        assert_eq!(err.code, "bad_request");
        // Plain ops never set the certificate flag.
        let req = parse_request(r#"{"op":"eval","db":"g","query":"q"}"#).unwrap();
        let Op::Compute(c) = req.op else {
            panic!("wrong op")
        };
        assert!(!c.certificate);

        let req = parse_request(r#"{"op":"register_replica","addr":"127.0.0.1:9"}"#).unwrap();
        let Op::RegisterReplica { addr } = req.op else {
            panic!("wrong op")
        };
        assert_eq!(addr, "127.0.0.1:9");
        let (_, err) = parse_request(r#"{"op":"register_replica"}"#).unwrap_err();
        assert_eq!(err.code, "bad_request");
    }

    #[test]
    fn certified_wire_line_round_trips_through_the_parser() {
        let kind = ComputeKind::Eval {
            query: "(x1) \"quoted\" E(x1,x1)".into(),
            k: Some(3),
            naive: true,
            minimize: false,
            threads: Some(4),
            backend: BackendMode::Bdd,
        };
        let line = certified_wire_line("g", &kind).unwrap();
        let req = parse_request(&line).unwrap();
        let Op::Compute(c) = req.op else {
            panic!("wrong op")
        };
        assert!(c.certificate);
        assert_eq!(c.db, "g");
        let ComputeKind::Eval {
            query,
            k,
            naive,
            backend,
            ..
        } = c.kind
        else {
            panic!("wrong kind")
        };
        assert_eq!(query, "(x1) \"quoted\" E(x1,x1)");
        assert_eq!(k, Some(3));
        assert!(naive);
        assert_eq!(backend, BackendMode::Bdd);

        let kind = ComputeKind::Datalog {
            program: "T(x) :- P(x).".into(),
            output: "T".into(),
            naive: false,
            backend: BackendMode::Auto,
        };
        let line = certified_wire_line("db2", &kind).unwrap();
        let req = parse_request(&line).unwrap();
        let Op::Compute(c) = req.op else {
            panic!("wrong op")
        };
        assert!(matches!(c.kind, ComputeKind::Datalog { .. }));

        // ESO (textual answers) and non-executions are never fanned out.
        assert!(certified_wire_line(
            "g",
            &ComputeKind::Eso {
                query: "q".into(),
                k: None
            }
        )
        .is_none());
        assert!(certified_wire_line("g", &ComputeKind::Sleep { millis: 1 }).is_none());
    }

    #[test]
    fn malformed_json_is_bad_request() {
        let (id, err) = parse_request("{nope").unwrap_err();
        assert_eq!(id, Json::Null);
        assert_eq!(err.code, "bad_request");
    }

    #[test]
    fn missing_fields_echo_id() {
        let (id, err) = parse_request(r#"{"op":"eval","id":"a"}"#).unwrap_err();
        assert_eq!(id, Json::Str("a".into()));
        assert_eq!(err.code, "bad_request");
        let (_, err) = parse_request(r#"{"op":"warp"}"#).unwrap_err();
        assert_eq!(err.code, "unknown_op");
        assert!(
            err.message.contains("supported ops:") && err.message.contains("explain"),
            "unknown_op lists the supported set, got: {}",
            err.message
        );
    }

    #[test]
    fn unknown_request_fields_are_ignored() {
        // The forward-compatibility rule: a request with fields this
        // server has never heard of is still valid.
        let req = parse_request(r#"{"op":"ping","shiny":1,"future_mode":"hyper"}"#).unwrap();
        assert!(matches!(req.op, Op::Ping));
        let req = parse_request(
            r#"{"op":"eval","db":"g","query":"(x1) E(x1,x1)","wormhole":true,"priority":9}"#,
        )
        .unwrap();
        assert!(matches!(req.op, Op::Compute(_)));
    }

    #[test]
    fn cache_keys_distinguish_options() {
        let a = ComputeKind::Eval {
            query: "q".into(),
            k: Some(2),
            naive: false,
            minimize: false,
            threads: None,
            backend: BackendMode::Auto,
        };
        let b = ComputeKind::Eval {
            query: "q".into(),
            k: Some(3),
            naive: false,
            minimize: false,
            threads: Some(4),
            backend: BackendMode::Auto,
        };
        assert_ne!(a.cache_key(), b.cache_key());
        // Threads never affect answers, so they are not in the key.
        let c = ComputeKind::Eval {
            query: "q".into(),
            k: Some(3),
            naive: false,
            minimize: false,
            threads: None,
            backend: BackendMode::Auto,
        };
        assert_eq!(b.cache_key(), c.cache_key());
        // `auto` keeps the historical key; a forced backend joins it.
        assert!(!c.cache_key().contains("backend="));
        let forced = ComputeKind::Eval {
            query: "q".into(),
            k: Some(3),
            naive: false,
            minimize: false,
            threads: None,
            backend: BackendMode::Bdd,
        };
        assert_ne!(forced.cache_key(), c.cache_key());
        assert!(forced.cache_key().contains("backend=bdd|"));
        let e = ComputeKind::Explain {
            inner: Box::new(c),
            analyze: true,
        };
        assert!(e.cache_key().starts_with("explain|analyze=true|eval|"));
    }

    #[test]
    fn parses_backend_field() {
        let req =
            parse_request(r#"{"op":"eval","db":"g","query":"(x1) E(x1,x1)","backend":"bdd"}"#)
                .unwrap();
        let Op::Compute(c) = req.op else {
            panic!("wrong op")
        };
        let ComputeKind::Eval { backend, .. } = c.kind else {
            panic!("wrong kind")
        };
        assert_eq!(backend, BackendMode::Bdd);
        // Absent means auto; Datalog accepts the field too.
        let req = parse_request(
            r#"{"op":"datalog","db":"g","program":"T(x) :- P(x).","output":"T","backend":"sparse"}"#,
        )
        .unwrap();
        let Op::Compute(c) = req.op else {
            panic!("wrong op")
        };
        let ComputeKind::Datalog { backend, .. } = c.kind else {
            panic!("wrong kind")
        };
        assert_eq!(backend, BackendMode::Sparse);
        // An unknown value is a structured invalid_option, not a silent
        // fall-back to auto.
        let (_, err) =
            parse_request(r#"{"op":"eval","db":"g","query":"q","backend":"warp"}"#).unwrap_err();
        assert_eq!(err.code, "invalid_option");
        assert!(
            err.message.contains("auto|dense|sparse|bdd"),
            "{}",
            err.message
        );
    }

    #[test]
    fn responses_round_trip() {
        let ok = ok_response(&Json::Num(1.0), vec![("pong".into(), Json::Bool(true))]);
        let parsed = Json::parse(&ok.to_string_compact()).unwrap();
        assert!(parsed.get("ok").map(Json::is_true).unwrap());
        let err = err_response(&Json::Null, &ProtoError::new("overloaded", "queue full"));
        let parsed = Json::parse(&err.to_string_compact()).unwrap();
        assert_eq!(
            parsed
                .get("error")
                .and_then(|e| e.get("code"))
                .and_then(Json::as_str),
            Some("overloaded")
        );
    }
}
