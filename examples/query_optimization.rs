//! Variable minimization as a query optimization methodology — the
//! paper's closing suggestion, on its own introduction example.
//!
//! Four plans for "employees who earn less than their manager's
//! secretary", with measured intermediate shapes:
//!
//! 1. the literal cross-product plan (the paper's "naive approach");
//! 2. a left-to-right join plan keeping all six variables;
//! 3. bucket elimination along a greedy ordering (arity ≤ width+1);
//! 4. Yannakakis on the acyclic core + comparison post-filter.
//!
//! Run with `cargo run --release -p bvq-bench --example query_optimization`.

use bvq_optimizer::{eval_eliminated, eval_yannakakis, greedy_order, induced_width, is_acyclic};
use bvq_workload::employee::{
    employee_database, employee_query, employee_scy_query, EmployeeConfig,
};

fn main() {
    let cfg = EmployeeConfig {
        employees: 12,
        departments: 2,
        salary_levels: 4,
    };
    let db = employee_database(cfg, 42);
    let q = employee_query();

    println!("query: ans(e) :- EMP(e,d), MGR(d,m), SCY(m,s), SAL(e,v), SAL(s,w), LESS(v,w)");
    println!("acyclic: {} (LESS closes a cycle)", is_acyclic(&q));
    let order = greedy_order(&q);
    let width = induced_width(&q, &order);
    println!(
        "greedy elimination order: {order:?}, induced width {width} ⇒ k = {}",
        width + 1
    );

    let (r1, s1) = q.eval_cross_product_plan(&db).unwrap();
    println!(
        "\n1. cross-product plan:  {} answers; max intermediate arity {}, cardinality {}",
        r1.len(),
        s1.max_arity,
        s1.max_cardinality
    );
    let (r2, s2) = q.eval_naive_plan(&db).unwrap();
    println!(
        "2. all-variables joins: {} answers; max intermediate arity {}, cardinality {}",
        r2.len(),
        s2.max_arity,
        s2.max_cardinality
    );
    let (r3, s3) = eval_eliminated(&q, &db, &order).unwrap();
    println!(
        "3. bucket elimination:  {} answers; max intermediate arity {}, cardinality {}",
        r3.len(),
        s3.max_arity,
        s3.max_cardinality
    );
    // Yannakakis on the acyclic core, then the comparison.
    let core = employee_scy_query();
    assert!(is_acyclic(&core));
    let (yann, s4) = eval_yannakakis(&core, &db).unwrap();
    let less = db.relation_by_name("LESS").unwrap();
    let r4 = yann.semijoin(less, &[(1, 0), (2, 1)]).project(&[0]);
    println!(
        "4. yannakakis + filter: {} answers; max intermediate arity {}, cardinality {}",
        r4.len(),
        s4.max_arity,
        s4.max_cardinality
    );

    assert_eq!(r1.sorted(), r2.sorted());
    assert_eq!(r1.sorted(), r3.sorted());
    assert_eq!(r1.sorted(), r4.sorted());
    println!("\nall four plans agree; the arity column is the paper's whole argument.");
    println!(
        "underpaid employees: {:?}",
        r1.sorted()
            .iter()
            .map(|t| db.label(t[0]))
            .collect::<Vec<_>>()
    );
}
