//! The lower-bound constructions of Section 4, end to end: over *fixed*
//! databases, growing bounded-variable expressions encode hard problems.
//!
//! * Theorem 4.5: SAT → `ESO⁰` over any database;
//! * Theorem 4.6: QBF → nested `PFP²` over `B₀ = ({0,1}, P = {0})`;
//! * Proposition 3.2 (combined complexity): Path Systems → `FO³`.
//!
//! Run with `cargo run --release -p bvq-bench --example expression_hardness`.

use bvq_core::{BoundedEvaluator, EsoEvaluator, PfpEvaluator};
use bvq_reductions::qbf_to_pfp::{b0, to_pfp_query};
use bvq_reductions::sat_to_eso::to_eso_sentence;
use bvq_reductions::PathSystem;
use bvq_relation::Database;
use bvq_sat::{qbf, solver, BoolExpr, Cnf, Lit, Qbf, Quantifier};

fn main() {
    // --- Theorem 4.5: SAT as ESO over a fixed (arbitrary!) database. ---
    let mut cnf = Cnf::new(3);
    cnf.add_clause([Lit::pos(0), Lit::pos(1)]);
    cnf.add_clause([Lit::neg(0), Lit::pos(2)]);
    cnf.add_clause([Lit::neg(1), Lit::neg(2)]);
    let eso = to_eso_sentence(&cnf);
    println!("Theorem 4.5 — SAT → ESO⁰:");
    println!("  CNF: (p0∨p1) ∧ (¬p0∨p2) ∧ (¬p1∨¬p2)");
    println!("  ESO sentence: {eso}");
    for db in [
        Database::builder(1).build(),
        Database::builder(4).relation("E", 2, [[0u32, 1]]).build(),
    ] {
        let ans = EsoEvaluator::new(&db, 1).check(&eso, &[], &[]).unwrap();
        println!("  over a database with n = {}: {}", db.domain_size(), ans);
    }
    println!("  SAT solver says: {}", solver::solve(&cnf).is_sat());

    // --- Theorem 4.6: QBF as nested PFP² over B₀. ---
    println!("\nTheorem 4.6 — QBF → PFP² over B₀ = ({{0,1}}, P = {{0}}):");
    let m = BoolExpr::Var(0).iff(BoolExpr::Var(1));
    for (prefix, desc) in [
        (
            vec![Quantifier::Forall, Quantifier::Exists],
            "∀y1 ∃y2 (y1 ↔ y2)",
        ),
        (
            vec![Quantifier::Exists, Quantifier::Forall],
            "∃y1 ∀y2 (y1 ↔ y2)",
        ),
    ] {
        let q = Qbf::new(prefix, m.clone());
        let query = to_pfp_query(&q);
        let db0 = b0();
        let (ans, stats) = PfpEvaluator::new(&db0, 2).eval_query(&query).unwrap();
        println!(
            "  {desc}: PFP² says {} (QBF solver: {}); query size {} nodes, {} pfp iterations",
            ans.as_boolean(),
            qbf::solve(&q),
            query.formula.size(),
            stats.fixpoint_iterations
        );
        assert_eq!(ans.as_boolean(), qbf::solve(&q));
    }

    // --- Proposition 3.2: Path Systems as FO³. ---
    println!("\nProposition 3.2 — Path Systems → FO³:");
    let ps = PathSystem {
        n: 6,
        q: vec![(2, 0, 1), (3, 2, 0), (4, 3, 2)],
        s: vec![0, 1],
        t: vec![4],
    };
    let db = ps.to_database();
    let query = ps.to_fo3_query();
    println!("  instance: axioms {{0,1}}, rules 0∧1→2, 2∧0→3, 3∧2→4, target 4");
    println!(
        "  ψ_m size: {} nodes, width {} (stays in FO³ for any instance size)",
        query.formula.size(),
        query.formula.width()
    );
    let (ans, _) = BoundedEvaluator::new(&db, 3).eval_query(&query).unwrap();
    println!(
        "  FO³ evaluation: {} (direct solver: {})",
        ans.as_boolean(),
        ps.solve_direct()
    );
    assert_eq!(ans.as_boolean(), ps.solve_direct());
}
