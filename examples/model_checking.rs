//! The paper's §1 application: verifying a finite-state program by
//! evaluating an `FP²` query against its state graph.
//!
//! We model a two-process mutual-exclusion protocol, check safety and
//! liveness properties three ways — directly, through the μ-calculus →
//! `FP²` translation, and with Theorem 3.5 certificates — and confirm they
//! agree.
//!
//! Run with `cargo run --release -p bvq-bench --example model_checking`.

use bvq_core::{CertifiedChecker, FpEvaluator};
use bvq_logic::Query;
use bvq_mucalc::{check_states, parse_mu, to_fp2, CheckStrategy};
use bvq_workload::kripke_gen::mutex_protocol;

fn main() {
    let k = mutex_protocol();
    println!(
        "mutual-exclusion protocol: {} states, {} transitions",
        k.num_states(),
        k.num_transitions()
    );
    let db = k.to_database();
    println!(
        "as a database: {} unary relations + binary E",
        db.schema().len() - 1
    );

    let properties = [
        (
            "safety: never both critical (AG ¬(c0∧c1))",
            "nu Z. (!(c0 & c1) & []Z)",
        ),
        ("possibility: P0 can enter (EF c0)", "mu Z. (c0 | <>Z)"),
        (
            "inevitability: P0 must enter (AF c0)",
            "mu Z. (c0 | (<>true & []Z))",
        ),
        (
            "reactivity: trying P0 can still enter (AG(t0 → EF c0))",
            "nu Z. ((t0 -> mu Y. (c0 | <>Y)) & []Z)",
        ),
        (
            "infinitely often critical on some path",
            "nu Z. mu Y. <>((c0 & Z) | Y)",
        ),
    ];

    for (what, src) in properties {
        let f = parse_mu(src).unwrap();
        // 1. Direct model checker.
        let direct = check_states(&k, &f, CheckStrategy::EmersonLei).unwrap();
        // 2. Through FP².
        let fp2 = to_fp2(&f).unwrap();
        assert!(fp2.width() <= 2, "Lμ lands in FP²");
        let q = Query::new(vec![bvq_logic::Var(0)], fp2);
        let (rel, _) = FpEvaluator::new(&db, 2).eval_query(&q).unwrap();
        let via_fp: Vec<usize> = rel.sorted().iter().map(|t| t[0] as usize).collect();
        assert_eq!(
            direct.iter().collect::<Vec<_>>(),
            via_fp,
            "translation disagrees!"
        );
        // 3. Certified decision at the initial state.
        let checker = CertifiedChecker::new(&db, 2);
        let (member, cert_size, _) = checker.decide(&q, &[0]).unwrap();
        assert_eq!(member, direct.contains(0));

        println!(
            "\n  {what}\n    μ-calculus: {src}\n    holds at init: {}   (satisfying states: {:?}, certificate: {} tuples)",
            member,
            direct.iter().collect::<Vec<_>>(),
            cert_size
        );
    }

    println!("\nall three pipelines agree — Lμ really is a fragment of FP².");
}
