//! Quickstart: build a database, evaluate bounded-variable queries in all
//! four languages, and run the Theorem 3.5 certificate pipeline.
//!
//! Run with `cargo run --release -p bvq-bench --example quickstart`.

use bvq_core::{BoundedEvaluator, CertifiedChecker, EsoEvaluator, FpEvaluator, PfpEvaluator};
use bvq_logic::parser::{parse_eso, parse_query};
use bvq_logic::{patterns, Query, Var};
use bvq_relation::Database;

fn main() {
    // A database: a directed graph with a labelled subset P.
    //   0 → 1 → 2 → 3 → 4, plus a shortcut 1 → 3 and an isolated 5.
    let db = Database::builder(6)
        .relation("E", 2, [[0u32, 1], [1, 2], [2, 3], [3, 4], [1, 3]])
        .relation("P", 1, [[2u32], [4]])
        .build();
    println!(
        "database: n = {}, |E| = {}",
        db.domain_size(),
        db.relation_by_name("E").unwrap().len()
    );

    // FO³: "x1 reaches x2 in exactly two steps".
    let q = parse_query("(x1,x2) exists x3. (E(x1,x3) & E(x3,x2))").unwrap();
    let (two_step, stats) = BoundedEvaluator::new(&db, 3).eval_query(&q).unwrap();
    println!("\nFO³  two-step pairs: {:?}", two_step.sorted());
    println!(
        "     intermediates never exceeded arity {} (k = 3)",
        stats.max_arity
    );

    // The paper's §2.2 example: a path of length 4 using only 3 variables.
    let q = Query::new(vec![Var(0), Var(1)], patterns::path_bounded(4));
    let (paths, _) = BoundedEvaluator::new(&db, 3).eval_query(&q).unwrap();
    println!("\nFO³  length-4 paths: {:?}", paths.sorted());

    // FP²: everything reachable from node 0.
    let q = parse_query("(x1) [lfp S(x1). (x1 = 0 | exists x2. (S(x2) & E(x2,x1)))](x1)").unwrap();
    let (reach, stats) = FpEvaluator::new(&db, 2).eval_query(&q).unwrap();
    println!("\nFP²  reachable from 0: {:?}", reach.sorted());
    println!("     fixpoint iterations: {}", stats.fixpoint_iterations);

    // Theorem 3.5: certify membership and non-membership.
    let checker = CertifiedChecker::new(&db, 2);
    for t in [4u32, 5] {
        let (member, cert_tuples, vstats) = checker.decide(&q, &[t]).unwrap();
        println!(
            "     certificate for {t}: member = {member}, {} tuples, verified in {} applications",
            cert_tuples, vstats.fixpoint_iterations
        );
    }

    // ESO²: 3-colorability of the (symmetrised) graph.
    let eso = parse_eso(
        "exists2 C1/1, C2/1, C3/1. \
         (forall x1. (C1(x1) | C2(x1) | C3(x1)) \
          & forall x1. forall x2. (E(x1,x2) -> \
              ~((C1(x1) & C1(x2)) | (C2(x1) & C2(x2)) | (C3(x1) & C3(x2)))))",
    )
    .unwrap();
    let sat = EsoEvaluator::new(&db, 2).check(&eso, &[], &[]).unwrap();
    println!("\nESO² 3-colourable: {sat}");

    // PFP¹: a divergent iteration denotes the empty relation.
    let q = Query::new(vec![Var(0)], patterns::pfp_parity_flip());
    let (flip, _) = PfpEvaluator::new(&db, 1).eval_query(&q).unwrap();
    println!(
        "\nPFP¹ divergent flip query: {} tuples (divergence ⇒ ∅)",
        flip.len()
    );

    // Variable minimization, automated: the naive width-(n+1) path formula
    // is rewritten to width ≤ 3 mechanically.
    let naive = patterns::path_naive(6);
    let slim = naive.minimize_width().unwrap();
    println!(
        "\nvariable minimization: ψ_6 width {} → {} (same answers, arity-bounded evaluation)",
        naive.width(),
        slim.width()
    );
    let (a, _) = BoundedEvaluator::new(&db, naive.width())
        .eval_query(&Query::new(vec![Var(0), Var(1)], naive))
        .unwrap();
    let (b, _) = BoundedEvaluator::new(&db, slim.width())
        .eval_query(&Query::new(vec![Var(0), Var(1)], slim))
        .unwrap();
    assert_eq!(a.sorted(), b.sorted());
}
